//! A deterministic virtual block device for out-of-core state.
//!
//! The platform's paged `NodeStore` spills pages here instead of holding a
//! million-node partition in RAM. Like everything else in the substrate,
//! the disk is *simulated*: blobs live in host memory, I/O time is
//! accumulated in virtual seconds (the caller drains it into the virtual
//! clock at deterministic points), and every misbehaviour is a pure hash
//! decision from the world's [`FaultPlan`] — never a shared RNG — so an
//! out-of-core chaos run is exactly as reproducible as a clean one.
//!
//! The device is deliberately dumb: it stores `(page, slot) → (version,
//! bytes)` and injects the four [`DiskFault`] kinds. Everything clever —
//! checksums, shadow-slot commits, retry backoff, escalation to checkpoint
//! recovery — belongs to the platform layer above, which is exactly the
//! contract a real block device offers a database.
//!
//! Fault semantics:
//!
//! - [`DiskFault::TransientError`]: the operation fails, the slot is
//!   untouched. Per-attempt decision — a retry may succeed.
//! - [`DiskFault::Full`]: a write is rejected for space, the slot keeps
//!   its previous content. Per-attempt.
//! - [`DiskFault::TornWrite`]: a write is *acknowledged* but one bit of
//!   the stored blob flips. Only a read-back check can see it.
//! - [`DiskFault::ReadRot`]: the stored blob decays at rest. Every read
//!   of a still-healthy slot rolls a fresh decision (keyed by the slot's
//!   read ordinal, so a copy that passed its write-time read-back can
//!   still decay later), and the first hit latches the slot rotten
//!   permanently — re-reads return identical damage, like real media rot.
//!   Only rewriting a fresh version restores the slot.

use crate::faults::{DiskFault, FaultPlan};
use std::collections::BTreeMap;

/// Virtual-time cost model for one disk: a fixed per-operation seek plus a
/// per-byte transfer charge, accumulated into [`VirtualDisk::take_seconds`]
/// rather than charged directly (the platform drains the accumulator into
/// its own clock at deterministic points, keeping I/O attributable to a
/// timing phase).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskTiming {
    /// Seconds charged per operation (seek + rotational latency).
    pub seek_seconds: f64,
    /// Seconds charged per byte transferred.
    pub byte_seconds: f64,
}

impl Default for DiskTiming {
    fn default() -> Self {
        DiskTiming {
            seek_seconds: 1e-4,
            byte_seconds: 1e-8,
        }
    }
}

/// A disk operation failed cleanly (the slot was not modified).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskError {
    /// A transient controller error; retrying may succeed.
    Transient,
    /// The device reported no space for a write; retrying may succeed.
    Full,
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Transient => write!(f, "transient disk I/O error"),
            DiskError::Full => write!(f, "disk full"),
        }
    }
}

impl std::error::Error for DiskError {}

/// Injection-side bookkeeping: what the fault plan actually did to this
/// disk. Detection-side counts (retries performed, torn writes *caught*,
/// pages recovered) are the platform's job and live in its run report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskCounters {
    /// Reads that returned data (including rotten data).
    pub reads: u64,
    /// Writes that were acknowledged (including torn ones).
    pub writes: u64,
    /// Bytes returned by successful reads.
    pub bytes_read: u64,
    /// Bytes accepted by acknowledged writes.
    pub bytes_written: u64,
    /// Operations failed with [`DiskError::Transient`].
    pub transient_errors: u64,
    /// Writes rejected with [`DiskError::Full`].
    pub full_rejections: u64,
    /// Acknowledged writes whose stored blob was damaged in flight.
    pub torn_writes: u64,
    /// Stored versions that decayed at rest (counted once per version,
    /// however many times the rotten slot is re-read).
    pub read_rots: u64,
}

#[derive(Debug, Clone)]
struct Slot {
    version: u64,
    bytes: Vec<u8>,
    /// Reads served so far — the per-read salt for rot decisions.
    reads: u64,
    /// Latched on the first rot hit: the blob has decayed for good.
    rotten: bool,
}

/// One rank's private virtual disk. See the module docs for the contract.
#[derive(Debug, Clone)]
pub struct VirtualDisk {
    rank: usize,
    plan: FaultPlan,
    timing: DiskTiming,
    slots: BTreeMap<(u64, u64), Slot>,
    /// Monotonic operation number, the per-attempt salt for fault
    /// decisions. The platform's operation sequence is deterministic per
    /// rank, so this plays the role message sequence numbers play on the
    /// wire: it makes retries of the same logical operation distinct
    /// identities without any shared state.
    ops: u64,
    pending: f64,
    counters: DiskCounters,
}

impl VirtualDisk {
    /// A fresh, empty disk for `rank`, misbehaving per `plan`.
    pub fn new(rank: usize, plan: FaultPlan, timing: DiskTiming) -> Self {
        VirtualDisk {
            rank,
            plan,
            timing,
            slots: BTreeMap::new(),
            ops: 0,
            pending: 0.0,
            counters: DiskCounters::default(),
        }
    }

    /// Store `bytes` as version `version` of `(page, slot)`, replacing any
    /// previous content of that slot. Transient and disk-full failures
    /// leave the slot untouched; an acknowledged write may still land torn
    /// (one stored bit flipped) — only a read-back check can tell.
    pub fn write(
        &mut self,
        page: u64,
        slot: u64,
        version: u64,
        bytes: &[u8],
    ) -> Result<(), DiskError> {
        let n = self.next_op();
        self.pending += self.timing.seek_seconds + bytes.len() as f64 * self.timing.byte_seconds;
        let plan = &self.plan;
        if plan.disk_fault_hits(self.rank, DiskFault::TransientError, page, slot, version, n) {
            self.counters.transient_errors += 1;
            return Err(DiskError::Transient);
        }
        if plan.disk_fault_hits(self.rank, DiskFault::Full, page, slot, version, n) {
            self.counters.full_rejections += 1;
            return Err(DiskError::Full);
        }
        let mut stored = bytes.to_vec();
        if !stored.is_empty()
            && plan.disk_fault_hits(self.rank, DiskFault::TornWrite, page, slot, version, n)
        {
            let bit = plan.disk_fault_bit(
                self.rank,
                DiskFault::TornWrite,
                page,
                slot,
                version,
                n,
                stored.len() as u64 * 8,
            );
            stored[(bit / 8) as usize] ^= 1 << (bit % 8);
            self.counters.torn_writes += 1;
        }
        self.counters.writes += 1;
        self.counters.bytes_written += bytes.len() as u64;
        self.slots.insert(
            (page, slot),
            Slot {
                version,
                bytes: stored,
                reads: 0,
                rotten: false,
            },
        );
        Ok(())
    }

    /// Read `(page, slot)`: `Ok(None)` if never written, otherwise the
    /// stored version and bytes — possibly decayed by sticky read rot.
    /// Transient failures charge the seek but return nothing.
    pub fn read(&mut self, page: u64, slot: u64) -> Result<Option<(u64, Vec<u8>)>, DiskError> {
        let n = self.next_op();
        self.pending += self.timing.seek_seconds;
        let rank = self.rank;
        let Some(s) = self.slots.get_mut(&(page, slot)) else {
            return Ok(None);
        };
        self.pending += s.bytes.len() as f64 * self.timing.byte_seconds;
        if self
            .plan
            .disk_fault_hits(rank, DiskFault::TransientError, page, slot, s.version, n)
        {
            self.counters.transient_errors += 1;
            return Err(DiskError::Transient);
        }
        self.counters.reads += 1;
        self.counters.bytes_read += s.bytes.len() as u64;
        // Progressive decay: each read of a healthy slot rolls a fresh
        // decision salted by the read ordinal; the first hit latches the
        // slot rotten for good, so retries of a rotten copy cannot help —
        // only a rewrite (fresh version, fresh slot) restores it.
        if !s.bytes.is_empty()
            && !s.rotten
            && self
                .plan
                .disk_fault_hits(rank, DiskFault::ReadRot, page, slot, s.version, s.reads)
        {
            s.rotten = true;
            self.counters.read_rots += 1;
        }
        s.reads += 1;
        let mut out = s.bytes.clone();
        if s.rotten {
            // The damage itself is keyed to the stored version alone, so
            // every read of this rotten copy decays identically.
            let bit = self.plan.disk_fault_bit(
                rank,
                DiskFault::ReadRot,
                page,
                slot,
                s.version,
                0,
                out.len() as u64 * 8,
            );
            out[(bit / 8) as usize] ^= 1 << (bit % 8);
        }
        Ok(Some((s.version, out)))
    }

    /// The stored version of `(page, slot)` without performing (or
    /// charging) an I/O — directory metadata, not a data read.
    pub fn version_of(&self, page: u64, slot: u64) -> Option<u64> {
        self.slots.get(&(page, slot)).map(|s| s.version)
    }

    /// Drop every stored blob (a reformat after catastrophic recovery).
    /// Fault decisions keep advancing — the op counter survives — so a
    /// replay after a purge makes fresh decisions and can converge.
    pub fn purge(&mut self) {
        self.slots.clear();
    }

    /// Accumulated virtual I/O seconds since the last drain, resetting the
    /// accumulator. The caller charges these to its clock at deterministic
    /// points so disk time lands in an attributable timing phase.
    pub fn take_seconds(&mut self) -> f64 {
        std::mem::take(&mut self.pending)
    }

    /// Injection-side counters (see [`DiskCounters`]).
    pub fn counters(&self) -> DiskCounters {
        self.counters
    }

    fn next_op(&mut self) -> u64 {
        let n = self.ops;
        self.ops += 1;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_disk() -> VirtualDisk {
        VirtualDisk::new(0, FaultPlan::new(7), DiskTiming::default())
    }

    #[test]
    fn clean_disk_round_trips_and_charges_time() {
        let mut d = clean_disk();
        assert_eq!(d.read(3, 0).unwrap(), None);
        d.write(3, 0, 1, &[1, 2, 3, 4]).unwrap();
        assert_eq!(d.read(3, 0).unwrap(), Some((1, vec![1, 2, 3, 4])));
        assert_eq!(d.version_of(3, 0), Some(1));
        assert_eq!(d.version_of(3, 1), None);
        // Overwrites replace.
        d.write(3, 0, 2, &[9]).unwrap();
        assert_eq!(d.read(3, 0).unwrap(), Some((2, vec![9])));
        let t = d.take_seconds();
        // 5 ops' seeks (the miss read charges one too) plus 4+4+1+1 bytes.
        let expect = 5.0 * 1e-4 + 10.0 * 1e-8;
        assert!((t - expect).abs() < 1e-12, "charged {t}, expected {expect}");
        assert_eq!(d.take_seconds(), 0.0, "drain resets the accumulator");
        let c = d.counters();
        assert_eq!((c.reads, c.writes), (2, 2));
        assert_eq!((c.bytes_read, c.bytes_written), (5, 5));
        assert!(c.transient_errors == 0 && c.torn_writes == 0 && c.read_rots == 0);
    }

    #[test]
    fn transient_errors_fail_cleanly_and_retries_can_succeed() {
        let plan = FaultPlan::new(11).with_disk_fault(0, DiskFault::TransientError, 0.5);
        let mut d = VirtualDisk::new(0, plan, DiskTiming::default());
        // Drive writes until one fails; the slot must keep its old content.
        d.write(0, 0, 1, &[42]).unwrap_or(());
        let mut failed = 0;
        for v in 2..200u64 {
            if d.write(0, 0, v, &[v as u8]).is_err() {
                failed += 1;
                // Retry the same logical write: a fresh attempt decision.
                let mut ok = false;
                for _ in 0..64 {
                    if d.write(0, 0, v, &[v as u8]).is_ok() {
                        ok = true;
                        break;
                    }
                }
                assert!(ok, "p=0.5 transient must eventually let a retry through");
            }
        }
        assert!(failed > 0, "p=0.5 must fail some attempts");
        assert!(d.counters().transient_errors >= failed);
    }

    #[test]
    fn full_rejection_leaves_the_slot_untouched() {
        let plan = FaultPlan::new(3).with_disk_fault(1, DiskFault::Full, 1.0);
        let mut d = VirtualDisk::new(1, plan, DiskTiming::default());
        assert_eq!(d.write(5, 0, 1, &[7, 7]), Err(DiskError::Full));
        assert_eq!(d.read(5, 0).unwrap(), None, "rejected write stored nothing");
        assert_eq!(d.counters().full_rejections, 1);
        assert_eq!(d.counters().writes, 0);
        // Faults are rank-local: another rank's disk on the same plan works.
        let plan2 = FaultPlan::new(3).with_disk_fault(1, DiskFault::Full, 1.0);
        let mut other = VirtualDisk::new(0, plan2, DiskTiming::default());
        other.write(5, 0, 1, &[7, 7]).unwrap();
        assert_eq!(other.read(5, 0).unwrap(), Some((1, vec![7, 7])));
    }

    #[test]
    fn torn_writes_are_acknowledged_but_damaged_and_deterministic() {
        let plan = FaultPlan::new(21).with_disk_fault(0, DiskFault::TornWrite, 1.0);
        let mut a = VirtualDisk::new(0, plan.clone(), DiskTiming::default());
        let mut b = VirtualDisk::new(0, plan, DiskTiming::default());
        let payload = [0u8; 16];
        a.write(1, 0, 1, &payload).unwrap();
        b.write(1, 0, 1, &payload).unwrap();
        let (_, got_a) = a.read(1, 0).unwrap().unwrap();
        let (_, got_b) = b.read(1, 0).unwrap().unwrap();
        assert_ne!(got_a, payload.to_vec(), "stored blob must be damaged");
        assert_eq!(got_a, got_b, "damage must be bit-reproducible");
        // Exactly one bit differs.
        let flipped: u32 = got_a
            .iter()
            .zip(&payload)
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert_eq!(flipped, 1);
        assert_eq!(a.counters().torn_writes, 1);
    }

    #[test]
    fn read_rot_is_sticky_and_counted_once() {
        let plan = FaultPlan::new(13).with_disk_fault(0, DiskFault::ReadRot, 1.0);
        let mut d = VirtualDisk::new(0, plan, DiskTiming::default());
        let payload = [0xAAu8; 8];
        d.write(2, 1, 4, &payload).unwrap();
        let (_, first) = d.read(2, 1).unwrap().unwrap();
        assert_ne!(first, payload.to_vec(), "p=1.0 rot must damage the blob");
        for _ in 0..10 {
            let (_, again) = d.read(2, 1).unwrap().unwrap();
            assert_eq!(again, first, "rot must be sticky across re-reads");
        }
        assert_eq!(d.counters().read_rots, 1, "counted once per version");
        // A rewrite (new version) makes a fresh rot decision, counted anew.
        d.write(2, 1, 5, &payload).unwrap();
        let (v, rewritten) = d.read(2, 1).unwrap().unwrap();
        assert_eq!(v, 5);
        assert_ne!(rewritten, payload.to_vec(), "p=1.0 rot hits every version");
        assert_eq!(d.counters().read_rots, 2);
    }

    #[test]
    fn purge_drops_data_but_keeps_the_decision_stream_fresh() {
        let mut d = clean_disk();
        d.write(0, 0, 1, &[1]).unwrap();
        d.purge();
        assert_eq!(d.read(0, 0).unwrap(), None);
        // Counters survive a purge (it models a reformat, not a reset).
        assert_eq!(d.counters().writes, 1);
    }
}
