//! World construction and the SPMD runner.

use crate::comm::Rank;
use crate::faults::FaultPlan;
use crate::mailbox::Mailbox;
use crate::net::{NetModel, TimingMode};
use crate::trace::TraceCollector;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// World configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Timing discipline (virtual LogP model or wall clock).
    pub timing: TimingMode,
    /// How long a blocked receive or barrier may wait (real time) before
    /// the world is declared deadlocked and panics with diagnostics.
    pub watchdog: Duration,
    /// Deterministic fault-injection schedule (no-op by default).
    pub faults: FaultPlan,
    /// Per-rank mailbox capacity in data-plane envelopes. `None` (the
    /// default) is unbounded; `Some(c)` enables credit-based flow control:
    /// senders block until the destination has a free slot, and a planted
    /// cyclic wait is detected and escalated (see [`FlowDeadlock`]) instead
    /// of hanging.
    pub mailbox_capacity: Option<usize>,
    /// Structured event collector (see [`crate::trace`]). `None` (the
    /// default) disables tracing entirely: ranks carry no buffer and every
    /// emit site is a single predicted-false branch.
    pub trace: Option<Arc<TraceCollector>>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            timing: TimingMode::Virtual(NetModel::origin2000()),
            watchdog: Duration::from_secs(30),
            faults: FaultPlan::default(),
            mailbox_capacity: None,
            trace: None,
        }
    }
}

impl Config {
    /// Virtual-time configuration with the given network model.
    pub fn virtual_time(net: NetModel) -> Self {
        Config {
            timing: TimingMode::Virtual(net),
            ..Default::default()
        }
    }

    /// Wall-clock configuration (grain sizes busy-spin).
    pub fn real_time() -> Self {
        Config {
            timing: TimingMode::Real,
            ..Default::default()
        }
    }

    /// Override the deadlock watchdog.
    pub fn with_watchdog(mut self, watchdog: Duration) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Install a fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Bound every mailbox to `capacity` data-plane envelopes, enabling
    /// credit-based backpressure.
    pub fn with_mailbox_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "mailbox capacity must be at least 1");
        self.mailbox_capacity = Some(capacity);
        self
    }

    /// Record structured trace events into `collector` (see
    /// [`crate::trace`]). Tracing never touches the virtual clock, so
    /// results and execution times are bit-identical with it on or off.
    pub fn with_trace(mut self, collector: Arc<TraceCollector>) -> Self {
        self.trace = Some(collector);
        self
    }
}

/// Lock a mutex, tolerating poison: the world has its own poisoning
/// protocol with better diagnostics than a cascade of secondary
/// `PoisonError` panics.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One rank's contribution to a control-plane exchange
/// ([`crate::Rank::ctl_exchange`]): a word of metadata, a load figure, and
/// a vote flag. Aggregated through the shared barrier so every survivor
/// sees the identical resolved vector.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CtlSlot {
    /// Opaque per-rank metadata word (e.g. a chosen node id).
    pub word: u64,
    /// Per-rank load or timing figure.
    pub load: f64,
    /// Per-rank boolean vote.
    pub flag: bool,
}

/// Resolved outcome of a control-plane exchange: the failure detector's
/// verdict plus every surviving rank's [`CtlSlot`] contribution.
///
/// The verdict is *agreed*: every survivor of the same exchange receives a
/// bit-identical copy, because it is snapshotted once, under the barrier
/// lock, at the instant the exchange resolves.
#[derive(Debug, Clone, PartialEq)]
pub struct CtlVerdict {
    /// Which ranks the failure detector has declared dead (crashed ranks
    /// only; cooperative kills are not in here).
    pub dead: Vec<bool>,
    /// Which live ranks are *suspected*: unreachable across an active
    /// network partition per the quorum rule ([`crate::faults::suspects`]),
    /// evaluated at the exchange's resolved clock. Unlike `dead`, suspicion
    /// is reversible — a suspected rank is expected back when the partition
    /// heals. Snapshotted under the same barrier lock as `dead`, so every
    /// rank (on *both* sides of the partition — the control plane is never
    /// cut) reads the identical two-level verdict.
    pub suspected: Vec<bool>,
    /// Each rank's contribution; `None` for ranks that died before
    /// contributing to this exchange.
    pub slots: Vec<Option<CtlSlot>>,
}

impl CtlVerdict {
    /// Ranks declared dead, in ascending order.
    pub fn dead_ranks(&self) -> Vec<usize> {
        (0..self.dead.len()).filter(|&r| self.dead[r]).collect()
    }

    /// Did the failure detector declare anyone dead?
    pub fn any_dead(&self) -> bool {
        self.dead.iter().any(|&d| d)
    }

    /// Is `rank` declared dead?
    pub fn is_dead(&self, rank: usize) -> bool {
        self.dead.get(rank).copied().unwrap_or(false)
    }

    /// Ranks currently suspected (partition-unreachable), ascending.
    pub fn suspected_ranks(&self) -> Vec<usize> {
        (0..self.suspected.len())
            .filter(|&r| self.suspected[r])
            .collect()
    }

    /// Is any rank currently suspected?
    pub fn any_suspected(&self) -> bool {
        self.suspected.iter().any(|&s| s)
    }

    /// Is `rank` currently suspected?
    pub fn is_suspected(&self, rank: usize) -> bool {
        self.suspected.get(rank).copied().unwrap_or(false)
    }

    /// `rank`'s metadata word, if it contributed.
    pub fn word(&self, rank: usize) -> Option<u64> {
        self.slots.get(rank).copied().flatten().map(|s| s.word)
    }

    /// `rank`'s load figure, if it contributed.
    pub fn load(&self, rank: usize) -> Option<f64> {
        self.slots.get(rank).copied().flatten().map(|s| s.load)
    }

    /// `rank`'s vote flag, if it contributed.
    pub fn flag(&self, rank: usize) -> Option<bool> {
        self.slots.get(rank).copied().flatten().map(|s| s.flag)
    }
}

/// Panic payload thrown by a rank that hits its scheduled crash point.
/// [`World::run_fallible`] catches it without poisoning the world; the
/// plain [`World::run`] treats it like any other rank panic.
pub(crate) struct RankCrashed(pub(crate) usize);

/// Panic payload thrown when the flow-control deadlock detector confirms a
/// cyclic credit wait among bounded mailboxes. Callers that run a world
/// under `catch_unwind` can downcast the payload to this type to turn the
/// hang-that-wasn't into a typed error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowDeadlock {
    /// The ranks forming the cyclic wait, rotated so the smallest rank is
    /// first; each waits for a mailbox credit from the next (the last waits
    /// on the first).
    pub cycle: Vec<usize>,
}

impl std::fmt::Display for FlowDeadlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flow-control deadlock: cyclic credit wait ")?;
        for r in &self.cycle {
            write!(f, "rank {r} -> ")?;
        }
        write!(f, "rank {}", self.cycle.first().copied().unwrap_or(0))
    }
}

/// Generation barrier that also computes the maximum virtual clock of the
/// arriving ranks, aggregates per-rank control slots, and doubles as the
/// deterministic failure detector: a barrier generation resolves once every
/// rank has either *arrived* or *been declared dead*, and the set of dead
/// ranks is snapshotted under the lock at that instant, so all waiters of
/// the generation read the identical verdict.
///
/// Determinism argument: a rank's crash point is a deterministic point in
/// its own instruction stream (it self-checks its virtual clock at substrate
/// operations), and a generation cannot resolve while a rank that will die
/// before reaching this barrier is still counted as expected — resolution
/// needs `count + deaths == n`, and such a rank neither arrives nor is yet
/// dead. Hence the snapshot at resolution always reflects exactly the
/// deaths that causally precede the barrier, independent of OS scheduling.
pub(crate) struct ClockBarrier {
    inner: Mutex<BarrierInner>,
    cond: Condvar,
}

struct BarrierInner {
    gen: u64,
    count: usize,
    max_clock: f64,
    /// Ranks declared dead (persists across generations; lazily sized).
    dead: Vec<bool>,
    deaths: usize,
    /// Control contributions of the in-progress generation.
    slots: Vec<Option<CtlSlot>>,
    /// Partition windows from the fault plan, cloned at world start so the
    /// failure detector can evaluate the quorum rule under its own lock.
    partitions: Vec<crate::faults::PartitionSpec>,
    resolved_clock: f64,
    resolved_dead: Vec<bool>,
    resolved_suspected: Vec<bool>,
    resolved_slots: Vec<Option<CtlSlot>>,
}

impl BarrierInner {
    fn ensure(&mut self, n: usize) {
        if self.dead.len() < n {
            self.dead.resize(n, false);
        }
        if self.slots.len() < n {
            self.slots.resize(n, None);
        }
    }

    fn resolve(&mut self) {
        self.resolved_clock = self.max_clock;
        self.resolved_dead = self.dead.clone();
        // The two-level verdict: suspicion is a pure function of the
        // partition schedule, the resolved (maximum) clock, and the live
        // set — all of which are fixed at this instant, under this lock, so
        // every waiter of the generation reads the identical answer.
        self.resolved_suspected = if self.partitions.is_empty() {
            vec![false; self.dead.len()]
        } else {
            let live: Vec<bool> = self.dead.iter().map(|&d| !d).collect();
            crate::faults::suspects(&self.partitions, self.resolved_clock, &live)
        };
        self.resolved_slots = std::mem::take(&mut self.slots);
        self.slots = vec![None; self.resolved_slots.len()];
        self.max_clock = 0.0;
        self.count = 0;
        self.gen += 1;
    }
}

impl ClockBarrier {
    fn new(partitions: Vec<crate::faults::PartitionSpec>) -> Self {
        ClockBarrier {
            inner: Mutex::new(BarrierInner {
                gen: 0,
                count: 0,
                max_clock: 0.0,
                dead: Vec::new(),
                deaths: 0,
                slots: Vec::new(),
                partitions,
                resolved_clock: 0.0,
                resolved_dead: Vec::new(),
                resolved_suspected: Vec::new(),
                resolved_slots: Vec::new(),
            }),
            cond: Condvar::new(),
        }
    }

    /// Enter the barrier with this rank's clock; returns the synchronised
    /// (maximum) clock once every rank has arrived or died. `check` is
    /// polled while waiting so a poisoned world aborts promptly.
    pub(crate) fn wait(&self, n: usize, clock: f64, check: impl Fn()) -> f64 {
        self.arrive(n, None, clock, &check).0
    }

    /// Enter a control-plane exchange: like [`wait`](Self::wait), but also
    /// deposits this rank's [`CtlSlot`] and returns the resolved verdict
    /// (dead set + everyone's slots) alongside the synchronised clock.
    pub(crate) fn wait_ctl(
        &self,
        n: usize,
        rank: usize,
        clock: f64,
        slot: CtlSlot,
        check: impl Fn(),
    ) -> (f64, CtlVerdict) {
        let (clock, dead, suspected, slots) = self.arrive(n, Some((rank, slot)), clock, &check);
        (
            clock,
            CtlVerdict {
                dead,
                suspected,
                slots,
            },
        )
    }

    #[allow(clippy::type_complexity)]
    fn arrive(
        &self,
        n: usize,
        entry: Option<(usize, CtlSlot)>,
        clock: f64,
        check: &dyn Fn(),
    ) -> (f64, Vec<bool>, Vec<bool>, Vec<Option<CtlSlot>>) {
        let mut g = lock_unpoisoned(&self.inner);
        g.ensure(n);
        g.max_clock = g.max_clock.max(clock);
        if let Some((rank, slot)) = entry {
            g.slots[rank] = Some(slot);
        }
        g.count += 1;
        if g.count + g.deaths >= n {
            g.resolve();
            self.cond.notify_all();
        } else {
            let my_gen = g.gen;
            while g.gen == my_gen {
                let (guard, _timeout) = self
                    .cond
                    .wait_timeout(g, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                g = guard;
                if g.gen != my_gen {
                    break;
                }
                drop(g);
                check();
                g = lock_unpoisoned(&self.inner);
            }
        }
        (
            g.resolved_clock,
            g.resolved_dead.clone(),
            g.resolved_suspected.clone(),
            g.resolved_slots.clone(),
        )
    }

    /// Register `rank` as crashed. If the in-progress generation is now
    /// complete (every other rank already arrived), it resolves here, with
    /// this death included in the snapshot.
    pub(crate) fn declare_dead(&self, rank: usize, n: usize) {
        let mut g = lock_unpoisoned(&self.inner);
        g.ensure(n);
        if !g.dead[rank] {
            g.dead[rank] = true;
            g.deaths += 1;
            if g.count > 0 && g.count + g.deaths >= n {
                g.resolve();
            }
            self.cond.notify_all();
        }
    }
}

/// Where a rank is currently blocked, for watchdog diagnostics.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BlockedOp {
    /// The blocking operation ("recv", "barrier").
    pub(crate) what: &'static str,
    /// Peer being waited on (`None` for any-source or barriers).
    pub(crate) src: Option<usize>,
    /// Tag being matched (`None` for barriers).
    pub(crate) tag: Option<i64>,
    /// The rank's virtual clock when it blocked.
    pub(crate) vtime: f64,
}

/// State shared by every rank of a running world.
pub(crate) struct Shared {
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) barrier: ClockBarrier,
    pub(crate) cfg: Config,
    pub(crate) poisoned: AtomicBool,
    /// Payload of the rank panic that poisoned the world, so the *original*
    /// failure (not the secondary "world poisoned" aborts) reaches the
    /// caller.
    first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Per-rank blocked-state registry: what each rank is currently
    /// blocked on, if anything. Feeds the watchdog's deadlock report.
    blocked: Vec<Mutex<Option<BlockedOp>>>,
    /// Lock-free "rank r has crashed" flags. Set *after* the crashed rank's
    /// mailbox is sealed, and after every message it ever sent was
    /// delivered (sends happen-before the crash on the dying thread), so a
    /// receiver that observes the flag and then finds its mailbox empty
    /// knows the message will never come.
    dead_flags: Vec<AtomicBool>,
    /// "Rank r is parked" flags, set by the membership layer while a
    /// suspected rank sits out a partition. Diagnostic only (watchdog
    /// report); carries no synchronisation role.
    parked: Vec<AtomicBool>,
    /// Credit-wait registry for bounded mailboxes: `waits[r]` is the rank
    /// whose mailbox `r` is currently blocked on for a credit; `epochs[r]`
    /// counts how many distinct waits `r` has started (so the deadlock
    /// detector can tell "continuously stuck" from "blocked, progressed,
    /// blocked again"). Credit *grants* clear the entry under this same
    /// lock, which is what makes a snapshot of the registry trustworthy.
    credit_waits: Mutex<CreditWaits>,
}

#[derive(Default)]
pub(crate) struct CreditWaits {
    waits: Vec<Option<usize>>,
    epochs: Vec<u64>,
}

impl CreditWaits {
    fn ensure(&mut self, n: usize) {
        if self.waits.len() < n {
            self.waits.resize(n, None);
            self.epochs.resize(n, 0);
        }
    }
}

impl Shared {
    /// Record (or clear, with `None`) what `rank` is blocked on.
    pub(crate) fn set_blocked(&self, rank: usize, op: Option<BlockedOp>) {
        *lock_unpoisoned(&self.blocked[rank]) = op;
    }

    /// Has `rank` crashed?
    pub(crate) fn is_dead(&self, rank: usize) -> bool {
        self.dead_flags[rank].load(Ordering::Acquire)
    }

    /// Mark (or clear) `rank` as parked for watchdog diagnostics.
    pub(crate) fn set_parked(&self, rank: usize, parked: bool) {
        self.parked[rank].store(parked, Ordering::Relaxed);
    }

    /// Full crash-death protocol for `rank`: seal its mailbox (dropping
    /// queued and future traffic), publish the dead flag, register the
    /// death with the failure detector, and wake every blocked receiver so
    /// it can re-check.
    pub(crate) fn declare_dead(&self, rank: usize) {
        let n = self.mailboxes.len();
        self.mailboxes[rank].seal();
        self.dead_flags[rank].store(true, Ordering::Release);
        self.barrier.declare_dead(rank, n);
        for mb in &self.mailboxes {
            mb.poke();
        }
    }

    /// Try to take one delivery credit on `dest`'s mailbox for `rank`.
    ///
    /// Registration and granting share the `credit_waits` lock: on failure
    /// the rank is recorded as waiting on `dest` (starting a new wait epoch
    /// unless it was already recorded), and on success any such record is
    /// cleared. A snapshot of the registry therefore never shows a rank as
    /// "waiting" when it in fact holds a freshly granted credit — the
    /// property the deadlock detector's cycle check rests on.
    pub(crate) fn try_acquire_credit(&self, rank: usize, dest: usize) -> bool {
        let mut cw = lock_unpoisoned(&self.credit_waits);
        cw.ensure(self.mailboxes.len());
        if self.mailboxes[dest].try_reserve() {
            cw.waits[rank] = None;
            true
        } else {
            if cw.waits[rank] != Some(dest) {
                cw.waits[rank] = Some(dest);
                cw.epochs[rank] = cw.epochs[rank].wrapping_add(1);
            }
            false
        }
    }

    /// Drop `rank`'s credit-wait registration (the send was abandoned, e.g.
    /// because the rank is about to crash or the world poisoned).
    pub(crate) fn clear_credit_wait(&self, rank: usize) {
        let mut cw = lock_unpoisoned(&self.credit_waits);
        cw.ensure(self.mailboxes.len());
        cw.waits[rank] = None;
    }

    /// Look for a cyclic credit wait through `rank`.
    ///
    /// Follows the wait-for edges starting at `rank`; a cycle is only
    /// reported if every rank on it is registered as waiting *and* every
    /// mailbox waited on is at capacity. Returns the cycle as
    /// `(member, wait_epoch)` pairs so the caller can require the *same*
    /// stuck waits across consecutive checks before escalating (a member
    /// that made progress in between starts a new epoch, which resets the
    /// caller's confirmation streak).
    pub(crate) fn flow_cycle(&self, rank: usize) -> Option<Vec<(usize, u64)>> {
        let cw = lock_unpoisoned(&self.credit_waits);
        if cw.waits.len() < self.mailboxes.len() {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = rank;
        loop {
            let dest = cw.waits[cur]?;
            if !self.mailboxes[dest].at_capacity() {
                return None;
            }
            path.push((cur, cw.epochs[cur]));
            if dest == rank {
                return Some(path);
            }
            if path.iter().any(|&(m, _)| m == dest) {
                // A cycle that does not pass through `rank`: its own
                // members will detect it.
                return None;
            }
            cur = dest;
        }
    }

    /// Multi-line snapshot of every rank's blocked state and mailbox
    /// contents — the body of the watchdog's deadlock panic.
    pub(crate) fn deadlock_report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let partitions = &self.cfg.faults.partitions;
        for (r, slot) in self.blocked.iter().enumerate() {
            let state = *lock_unpoisoned(slot);
            let pending = self.mailboxes[r].pending();
            let parked = if self.parked[r].load(Ordering::Relaxed) {
                " [PARKED: suspected by the membership layer, awaiting partition heal]"
            } else {
                ""
            };
            match state {
                Some(b) => {
                    let peer = match b.src {
                        Some(s) => format!("rank {s}"),
                        None => "any".to_string(),
                    };
                    let tag = match b.tag {
                        Some(t) => format!("{t}"),
                        None => "-".to_string(),
                    };
                    // If the blocked peer is across an active partition at
                    // the moment this rank blocked, say so: "rank stuck in
                    // recv" and "rank cut off by a partition" call for very
                    // different fixes.
                    let cut_off = b.src.is_some_and(|s| {
                        partitions.iter().any(|p| {
                            p.active_at(b.vtime)
                                && matches!(
                                    (p.group_of(s), p.group_of(r)),
                                    (Some(a), Some(b)) if a != b
                                )
                        })
                    });
                    let suspect = if cut_off {
                        format!(" [peer {peer} is SUSPECTED: cut off by an active partition]")
                    } else {
                        String::new()
                    };
                    let _ = writeln!(
                        out,
                        "  rank {r}: blocked in {} (peer {peer}, tag {tag}) since vtime {:.6}; mailbox holds {pending:?}{parked}{suspect}",
                        b.what, b.vtime
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "  rank {r}: running; mailbox holds {pending:?}{parked}"
                    );
                }
            }
        }
        {
            let cw = lock_unpoisoned(&self.credit_waits);
            for (r, w) in cw.waits.iter().enumerate() {
                if let Some(dest) = w {
                    let _ = writeln!(
                        out,
                        "  rank {r}: credit-stalled on rank {dest} (mailbox at capacity: {})",
                        self.mailboxes[*dest].at_capacity()
                    );
                }
            }
        }
        out
    }
}

/// Factory for SPMD executions.
///
/// A `World` is cheap; it holds only configuration. Each [`run`](World::run)
/// spawns `n` rank threads, hands each a [`Rank`], and joins them,
/// returning their results in rank order.
#[derive(Debug, Clone, Default)]
pub struct World {
    cfg: Config,
}

impl World {
    /// A world with the given configuration.
    pub fn new(cfg: Config) -> Self {
        World { cfg }
    }

    /// The configuration this world runs with.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Run `f` as an SPMD program on `n` ranks and collect each rank's
    /// return value in rank order.
    ///
    /// If any rank panics, the world is poisoned: blocked ranks abort, and
    /// the first panic is propagated to the caller.
    ///
    /// # Panics
    /// Panics if `n == 0`, if a rank panics, or on watchdog-detected
    /// deadlock.
    pub fn run<F, R>(&self, n: usize, f: F) -> Vec<R>
    where
        F: Fn(&Rank) -> R + Send + Sync,
        R: Send,
    {
        self.run_inner(n, f, false)
            .into_iter()
            .map(|r| r.expect("no panic recorded, so every rank must have a result"))
            .collect()
    }

    /// Run `f` as an SPMD program on `n` ranks, tolerating scheduled
    /// crashes: a rank that dies at its [`FaultPlan::with_crash`] point
    /// yields `None` in its slot instead of poisoning the world, and the
    /// survivors keep running. Any *other* rank panic still poisons the
    /// world and propagates.
    pub fn run_fallible<F, R>(&self, n: usize, f: F) -> Vec<Option<R>>
    where
        F: Fn(&Rank) -> R + Send + Sync,
        R: Send,
    {
        self.run_inner(n, f, true)
    }

    fn run_inner<F, R>(&self, n: usize, f: F, tolerate_crashes: bool) -> Vec<Option<R>>
    where
        F: Fn(&Rank) -> R + Send + Sync,
        R: Send,
    {
        assert!(n > 0, "world must have at least one rank");
        if tolerate_crashes && self.cfg.faults.has_crashes() {
            install_crash_quiet_hook();
        }
        let verify_seed = self
            .cfg
            .faults
            .message_faults()
            .then_some(self.cfg.faults.seed);
        let shared = Arc::new(Shared {
            mailboxes: (0..n)
                .map(|_| Mailbox::configured(verify_seed, self.cfg.mailbox_capacity))
                .collect(),
            barrier: ClockBarrier::new(self.cfg.faults.partitions.clone()),
            cfg: self.cfg.clone(),
            poisoned: AtomicBool::new(false),
            first_panic: Mutex::new(None),
            blocked: (0..n).map(|_| Mutex::new(None)).collect(),
            dead_flags: (0..n).map(|_| AtomicBool::new(false)).collect(),
            parked: (0..n).map(|_| AtomicBool::new(false)).collect(),
            credit_waits: Mutex::new(CreditWaits::default()),
        });
        let epoch = Instant::now();
        let results: Vec<Option<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|id| {
                    let shared = Arc::clone(&shared);
                    let f = &f;
                    scope.spawn(move || {
                        let rank = Rank::new(id, n, Arc::clone(&shared), epoch);
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&rank))) {
                            Ok(v) => Some(v),
                            Err(payload) => {
                                if tolerate_crashes {
                                    if let Some(c) = payload.downcast_ref::<RankCrashed>() {
                                        // The rank already ran the full death
                                        // protocol before unwinding; survivors
                                        // continue without it.
                                        debug_assert_eq!(c.0, id);
                                        return None;
                                    }
                                }
                                let mut slot = lock_unpoisoned(&shared.first_panic);
                                if slot.is_none() {
                                    *slot = Some(payload);
                                }
                                shared.poisoned.store(true, Ordering::Relaxed);
                                None
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread itself must not die"))
                .collect()
        });
        if let Some(payload) = lock_unpoisoned(&shared.first_panic).take() {
            std::panic::resume_unwind(payload);
        }
        results
    }
}

/// Silence the default "thread panicked" report for the controlled
/// [`RankCrashed`] unwind — it is the crash substrate's flow control, not a
/// failure. Installed once, process-wide; every other panic is delegated to
/// the previously installed hook.
fn install_crash_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<RankCrashed>().is_none() {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let out = World::new(Config::default()).run(1, |rank| rank.rank() + rank.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn results_come_back_in_rank_order() {
        let out = World::new(Config::default()).run(8, |rank| rank.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = World::new(Config::default()).run(0, |_| ());
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn rank_panic_propagates() {
        let _ =
            World::new(Config::default().with_watchdog(Duration::from_secs(2))).run(2, |rank| {
                if rank.rank() == 1 {
                    panic!("deliberate");
                }
                // rank 0 blocks forever; poisoning must release it.
                let _: u32 = rank.recv(1, 0);
            });
    }

    #[test]
    fn crashed_rank_yields_none_and_survivors_agree_on_the_verdict() {
        let cfg = Config::default()
            .with_watchdog(Duration::from_secs(5))
            .with_faults(FaultPlan::new(0).with_crash(1, 0.5));
        let out = World::new(cfg).run_fallible(4, |rank| {
            // Everyone computes past the crash point, then exchanges.
            rank.advance(1.0);
            let v = rank.ctl_exchange(CtlSlot {
                word: rank.rank() as u64,
                load: rank.rank() as f64,
                flag: true,
            });
            (rank.rank(), v)
        });
        assert!(out[1].is_none(), "rank 1 must have crashed");
        let survivors: Vec<_> = out.into_iter().flatten().collect();
        assert_eq!(survivors.len(), 3);
        let verdict = &survivors[0].1;
        assert_eq!(verdict.dead_ranks(), vec![1]);
        assert!(
            verdict.slots[1].is_none(),
            "the dead rank contributed nothing"
        );
        assert_eq!(verdict.word(0), Some(0));
        assert_eq!(verdict.word(2), Some(2));
        for (_, v) in &survivors {
            assert_eq!(v, verdict, "all survivors must agree bit-for-bit");
        }
    }

    #[test]
    fn try_recv_detects_a_dead_sender() {
        let cfg = Config::default()
            .with_watchdog(Duration::from_secs(5))
            .with_faults(FaultPlan::new(0).with_crash(1, 0.5));
        let out = World::new(cfg).run_fallible(2, |rank| {
            if rank.rank() == 1 {
                // Sent before the crash point: must arrive.
                rank.send(0, 7, &11u32);
                rank.advance(1.0); // dies here
                rank.send(0, 8, &22u32); // never happens
                unreachable!();
            }
            let early: Result<u32, _> = rank.try_recv(1, 7);
            let late: Result<u32, _> = rank.try_recv(1, 8);
            (early, late)
        });
        let (early, late) = out[0].expect("rank 0 survives");
        assert_eq!(early, Ok(11));
        assert_eq!(late, Err(crate::Died(1)));
        assert!(out[1].is_none());
    }

    #[test]
    fn crash_verdicts_are_deterministic_across_runs() {
        let run_once = || {
            let cfg = Config::default()
                .with_watchdog(Duration::from_secs(5))
                .with_faults(FaultPlan::new(9).with_crash(2, 0.25));
            World::new(cfg).run_fallible(4, |rank| {
                rank.advance(0.1);
                let a = rank.ctl_exchange(CtlSlot::default());
                rank.advance(0.5);
                let b = rank.ctl_exchange(CtlSlot::default());
                let t: Result<u32, _> = rank.try_recv(2, 3);
                (a, b, t, rank.wtime().to_bits())
            })
        };
        assert_eq!(run_once()[0], run_once()[0]);
    }

    #[test]
    fn peak_mailbox_depth_survives_a_shrinking_queue() {
        let depths = World::new(Config::default()).run(2, |rank| {
            if rank.rank() == 0 {
                for i in 0..4u64 {
                    rank.send(1, 9, &i);
                }
                rank.barrier();
                (0, 0, 0)
            } else {
                // All four sends happen-before rank 0's barrier entry, so
                // the queue holds exactly four envelopes here.
                rank.barrier();
                let first = rank.stats().peak_mailbox_depth;
                for _ in 0..4 {
                    let _: u64 = rank.recv(0, 9);
                }
                // Queue has shrunk to empty; re-snapshotting must not lose
                // the high-water mark.
                let second = rank.stats().peak_mailbox_depth;
                (first, second, rank.mailbox_delivered())
            }
        });
        let (first, second, delivered) = depths[1];
        assert_eq!(first, 4);
        assert_eq!(second, 4, "high-water mark must survive the drain");
        assert_eq!(delivered, 4, "cumulative delivery count is monotonic");
    }

    #[test]
    fn send_to_out_of_range_rank_raises_typed_payload() {
        let err = std::panic::catch_unwind(|| {
            World::new(Config::default().with_watchdog(Duration::from_secs(2))).run(2, |rank| {
                if rank.rank() == 0 {
                    rank.send(2, 1, &1u64);
                }
                rank.barrier();
            })
        })
        .expect_err("invalid destination must fail the world");
        let invalid = err
            .downcast_ref::<crate::stats::InvalidRank>()
            .expect("payload must be the typed InvalidRank, not a bare index panic");
        assert_eq!(invalid.src, 0);
        assert_eq!(invalid.dest, 2);
        assert_eq!(invalid.world, 2);
    }

    #[test]
    fn traces_survive_crashes_and_flush_on_drop() {
        let collector = Arc::new(TraceCollector::new());
        let cfg = Config::default()
            .with_watchdog(Duration::from_secs(5))
            .with_faults(FaultPlan::new(7).with_crash(1, 0.2))
            .with_trace(Arc::clone(&collector));
        let _ = World::new(cfg).run_fallible(2, |rank| {
            rank.advance(0.5);
            rank.barrier();
            rank.wtime()
        });
        let traces = collector.take();
        assert_eq!(traces.len(), 2, "dead ranks still flush their buffers");
        let crashed = &traces[1].1;
        assert!(
            crashed
                .iter()
                .any(|e| matches!(e, crate::trace::TraceEvent::Instant { name: "crash", .. })),
            "the crash instant must be recorded"
        );
    }

    #[test]
    fn watchdog_report_names_the_blocked_peer() {
        let err = std::panic::catch_unwind(|| {
            World::new(Config::default().with_watchdog(Duration::from_millis(200))).run(2, |rank| {
                if rank.rank() == 0 {
                    // Blocks forever: rank 1 never sends on tag 7.
                    let _: u32 = rank.recv(1, 7);
                } else {
                    // Rank 1 parks in a barrier rank 0 never reaches.
                    rank.barrier();
                }
            })
        })
        .expect_err("world must deadlock");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap());
        assert!(msg.contains("deadlock"), "got: {msg}");
        assert!(msg.contains("tag 7"), "report should name the tag: {msg}");
        assert!(
            msg.contains("barrier"),
            "report should show rank 1 in barrier: {msg}"
        );
    }

    #[test]
    fn verdict_suspects_the_minority_inside_the_window_on_both_sides() {
        let cfg = Config::default()
            .with_watchdog(Duration::from_secs(5))
            .with_faults(FaultPlan::new(0).with_partition(vec![vec![0, 1, 2], vec![3]], 0.5, 2.0));
        let out = World::new(cfg).run(4, |rank| {
            let before = rank.ctl_exchange(CtlSlot::default());
            rank.advance(1.0);
            let during = rank.ctl_exchange(CtlSlot::default());
            rank.advance(2.0);
            let after = rank.ctl_exchange(CtlSlot::default());
            (before, during, after)
        });
        let (before, during, after) = &out[0];
        assert!(!before.any_suspected());
        assert_eq!(during.suspected_ranks(), vec![3]);
        assert!(!during.any_dead(), "suspicion is not death");
        assert!(!after.any_suspected(), "healing clears suspicion");
        for o in &out {
            assert_eq!(o, &out[0], "both sides must agree bit-for-bit");
        }
    }

    #[test]
    fn watchdog_report_names_parked_and_suspected_ranks() {
        let err = std::panic::catch_unwind(|| {
            let cfg = Config::default()
                .with_watchdog(Duration::from_millis(200))
                .with_faults(FaultPlan::new(0).with_partition(vec![vec![0], vec![1]], 0.0, 10.0));
            World::new(cfg).run(2, |rank| {
                if rank.rank() == 1 {
                    // A partition-unaware receive across the cut: the
                    // tombstone is skipped, so this wedges on the watchdog.
                    rank.set_parked(true);
                    let _: u32 = rank.recv(0, 7);
                } else {
                    rank.send(1, 7, &5u32);
                    rank.barrier();
                }
            })
        })
        .expect_err("world must deadlock");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap());
        assert!(msg.contains("PARKED"), "got: {msg}");
        assert!(msg.contains("SUSPECTED"), "got: {msg}");
        assert!(msg.contains("cut off by an active partition"), "got: {msg}");
    }
}
