//! World construction and the SPMD runner.

use crate::comm::Rank;
use crate::faults::FaultPlan;
use crate::mailbox::Mailbox;
use crate::net::{NetModel, TimingMode};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// World configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Timing discipline (virtual LogP model or wall clock).
    pub timing: TimingMode,
    /// How long a blocked receive or barrier may wait (real time) before
    /// the world is declared deadlocked and panics with diagnostics.
    pub watchdog: Duration,
    /// Deterministic fault-injection schedule (no-op by default).
    pub faults: FaultPlan,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            timing: TimingMode::Virtual(NetModel::origin2000()),
            watchdog: Duration::from_secs(30),
            faults: FaultPlan::default(),
        }
    }
}

impl Config {
    /// Virtual-time configuration with the given network model.
    pub fn virtual_time(net: NetModel) -> Self {
        Config {
            timing: TimingMode::Virtual(net),
            ..Default::default()
        }
    }

    /// Wall-clock configuration (grain sizes busy-spin).
    pub fn real_time() -> Self {
        Config {
            timing: TimingMode::Real,
            ..Default::default()
        }
    }

    /// Override the deadlock watchdog.
    pub fn with_watchdog(mut self, watchdog: Duration) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Install a fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

/// Lock a mutex, tolerating poison: the world has its own poisoning
/// protocol with better diagnostics than a cascade of secondary
/// `PoisonError` panics.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Generation barrier that also computes the maximum virtual clock of the
/// arriving ranks.
pub(crate) struct ClockBarrier {
    inner: Mutex<BarrierInner>,
    cond: Condvar,
}

struct BarrierInner {
    gen: u64,
    count: usize,
    max_clock: f64,
    resolved_clock: f64,
}

impl ClockBarrier {
    fn new() -> Self {
        ClockBarrier {
            inner: Mutex::new(BarrierInner {
                gen: 0,
                count: 0,
                max_clock: 0.0,
                resolved_clock: 0.0,
            }),
            cond: Condvar::new(),
        }
    }

    /// Enter the barrier with this rank's clock; returns the synchronised
    /// (maximum) clock once all `n` ranks have arrived. `check` is polled
    /// while waiting so a poisoned world aborts promptly.
    pub(crate) fn wait(&self, n: usize, clock: f64, check: impl Fn()) -> f64 {
        let mut g = lock_unpoisoned(&self.inner);
        g.max_clock = g.max_clock.max(clock);
        g.count += 1;
        if g.count == n {
            g.resolved_clock = g.max_clock;
            g.max_clock = 0.0;
            g.count = 0;
            g.gen += 1;
            self.cond.notify_all();
            g.resolved_clock
        } else {
            let my_gen = g.gen;
            while g.gen == my_gen {
                let (guard, _timeout) = self
                    .cond
                    .wait_timeout(g, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                g = guard;
                if g.gen != my_gen {
                    break;
                }
                drop(g);
                check();
                g = lock_unpoisoned(&self.inner);
            }
            g.resolved_clock
        }
    }
}

/// Where a rank is currently blocked, for watchdog diagnostics.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BlockedOp {
    /// The blocking operation ("recv", "barrier").
    pub(crate) what: &'static str,
    /// Peer being waited on (`None` for any-source or barriers).
    pub(crate) src: Option<usize>,
    /// Tag being matched (`None` for barriers).
    pub(crate) tag: Option<i64>,
    /// The rank's virtual clock when it blocked.
    pub(crate) vtime: f64,
}

/// State shared by every rank of a running world.
pub(crate) struct Shared {
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) barrier: ClockBarrier,
    pub(crate) cfg: Config,
    pub(crate) poisoned: AtomicBool,
    /// Payload of the rank panic that poisoned the world, so the *original*
    /// failure (not the secondary "world poisoned" aborts) reaches the
    /// caller.
    first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Per-rank blocked-state registry: what each rank is currently
    /// blocked on, if anything. Feeds the watchdog's deadlock report.
    blocked: Vec<Mutex<Option<BlockedOp>>>,
}

impl Shared {
    /// Record (or clear, with `None`) what `rank` is blocked on.
    pub(crate) fn set_blocked(&self, rank: usize, op: Option<BlockedOp>) {
        *lock_unpoisoned(&self.blocked[rank]) = op;
    }

    /// Multi-line snapshot of every rank's blocked state and mailbox
    /// contents — the body of the watchdog's deadlock panic.
    pub(crate) fn deadlock_report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (r, slot) in self.blocked.iter().enumerate() {
            let state = *lock_unpoisoned(slot);
            let pending = self.mailboxes[r].pending();
            match state {
                Some(b) => {
                    let peer = match b.src {
                        Some(s) => format!("rank {s}"),
                        None => "any".to_string(),
                    };
                    let tag = match b.tag {
                        Some(t) => format!("{t}"),
                        None => "-".to_string(),
                    };
                    let _ = writeln!(
                        out,
                        "  rank {r}: blocked in {} (peer {peer}, tag {tag}) since vtime {:.6}; mailbox holds {pending:?}",
                        b.what, b.vtime
                    );
                }
                None => {
                    let _ = writeln!(out, "  rank {r}: running; mailbox holds {pending:?}");
                }
            }
        }
        out
    }
}

/// Factory for SPMD executions.
///
/// A `World` is cheap; it holds only configuration. Each [`run`](World::run)
/// spawns `n` rank threads, hands each a [`Rank`], and joins them,
/// returning their results in rank order.
#[derive(Debug, Clone, Default)]
pub struct World {
    cfg: Config,
}

impl World {
    /// A world with the given configuration.
    pub fn new(cfg: Config) -> Self {
        World { cfg }
    }

    /// The configuration this world runs with.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Run `f` as an SPMD program on `n` ranks and collect each rank's
    /// return value in rank order.
    ///
    /// If any rank panics, the world is poisoned: blocked ranks abort, and
    /// the first panic is propagated to the caller.
    ///
    /// # Panics
    /// Panics if `n == 0`, if a rank panics, or on watchdog-detected
    /// deadlock.
    pub fn run<F, R>(&self, n: usize, f: F) -> Vec<R>
    where
        F: Fn(&Rank) -> R + Send + Sync,
        R: Send,
    {
        assert!(n > 0, "world must have at least one rank");
        let shared = Arc::new(Shared {
            mailboxes: (0..n).map(|_| Mailbox::new()).collect(),
            barrier: ClockBarrier::new(),
            cfg: self.cfg.clone(),
            poisoned: AtomicBool::new(false),
            first_panic: Mutex::new(None),
            blocked: (0..n).map(|_| Mutex::new(None)).collect(),
        });
        let epoch = Instant::now();
        let results: Vec<Option<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|id| {
                    let shared = Arc::clone(&shared);
                    let f = &f;
                    scope.spawn(move || {
                        let rank = Rank::new(id, n, Arc::clone(&shared), epoch);
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&rank))) {
                            Ok(v) => Some(v),
                            Err(payload) => {
                                let mut slot = lock_unpoisoned(&shared.first_panic);
                                if slot.is_none() {
                                    *slot = Some(payload);
                                }
                                shared.poisoned.store(true, Ordering::Relaxed);
                                None
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread itself must not die"))
                .collect()
        });
        if let Some(payload) = lock_unpoisoned(&shared.first_panic).take() {
            std::panic::resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|r| r.expect("no panic recorded, so every rank must have a result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let out = World::new(Config::default()).run(1, |rank| rank.rank() + rank.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn results_come_back_in_rank_order() {
        let out = World::new(Config::default()).run(8, |rank| rank.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = World::new(Config::default()).run(0, |_| ());
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn rank_panic_propagates() {
        let _ =
            World::new(Config::default().with_watchdog(Duration::from_secs(2))).run(2, |rank| {
                if rank.rank() == 1 {
                    panic!("deliberate");
                }
                // rank 0 blocks forever; poisoning must release it.
                let _: u32 = rank.recv(1, 0);
            });
    }

    #[test]
    fn watchdog_report_names_the_blocked_peer() {
        let err = std::panic::catch_unwind(|| {
            World::new(Config::default().with_watchdog(Duration::from_millis(200))).run(2, |rank| {
                if rank.rank() == 0 {
                    // Blocks forever: rank 1 never sends on tag 7.
                    let _: u32 = rank.recv(1, 7);
                } else {
                    // Rank 1 parks in a barrier rank 0 never reaches.
                    rank.barrier();
                }
            })
        })
        .expect_err("world must deadlock");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap());
        assert!(msg.contains("deadlock"), "got: {msg}");
        assert!(msg.contains("tag 7"), "report should name the tag: {msg}");
        assert!(
            msg.contains("barrier"),
            "report should show rank 1 in barrier: {msg}"
        );
    }
}
