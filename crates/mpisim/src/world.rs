//! World construction and the SPMD runner.

use crate::comm::Rank;
use crate::mailbox::Mailbox;
use crate::net::{NetModel, TimingMode};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// World configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Timing discipline (virtual LogP model or wall clock).
    pub timing: TimingMode,
    /// How long a blocked receive or barrier may wait (real time) before
    /// the world is declared deadlocked and panics with diagnostics.
    pub watchdog: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            timing: TimingMode::Virtual(NetModel::origin2000()),
            watchdog: Duration::from_secs(30),
        }
    }
}

impl Config {
    /// Virtual-time configuration with the given network model.
    pub fn virtual_time(net: NetModel) -> Self {
        Config {
            timing: TimingMode::Virtual(net),
            ..Default::default()
        }
    }

    /// Wall-clock configuration (grain sizes busy-spin).
    pub fn real_time() -> Self {
        Config {
            timing: TimingMode::Real,
            ..Default::default()
        }
    }

    /// Override the deadlock watchdog.
    pub fn with_watchdog(mut self, watchdog: Duration) -> Self {
        self.watchdog = watchdog;
        self
    }
}

/// Generation barrier that also computes the maximum virtual clock of the
/// arriving ranks.
pub(crate) struct ClockBarrier {
    inner: Mutex<BarrierInner>,
    cond: Condvar,
}

struct BarrierInner {
    gen: u64,
    count: usize,
    max_clock: f64,
    resolved_clock: f64,
}

impl ClockBarrier {
    fn new() -> Self {
        ClockBarrier {
            inner: Mutex::new(BarrierInner {
                gen: 0,
                count: 0,
                max_clock: 0.0,
                resolved_clock: 0.0,
            }),
            cond: Condvar::new(),
        }
    }

    /// Enter the barrier with this rank's clock; returns the synchronised
    /// (maximum) clock once all `n` ranks have arrived. `check` is polled
    /// while waiting so a poisoned world aborts promptly.
    pub(crate) fn wait(&self, n: usize, clock: f64, check: impl Fn()) -> f64 {
        let mut g = self.inner.lock();
        g.max_clock = g.max_clock.max(clock);
        g.count += 1;
        if g.count == n {
            g.resolved_clock = g.max_clock;
            g.max_clock = 0.0;
            g.count = 0;
            g.gen += 1;
            self.cond.notify_all();
            g.resolved_clock
        } else {
            let my_gen = g.gen;
            while g.gen == my_gen {
                self.cond.wait_for(&mut g, Duration::from_millis(50));
                if g.gen != my_gen {
                    break;
                }
                drop(g);
                check();
                g = self.inner.lock();
            }
            g.resolved_clock
        }
    }
}

/// State shared by every rank of a running world.
pub(crate) struct Shared {
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) barrier: ClockBarrier,
    pub(crate) cfg: Config,
    pub(crate) poisoned: AtomicBool,
    /// Payload of the rank panic that poisoned the world, so the *original*
    /// failure (not the secondary "world poisoned" aborts) reaches the
    /// caller.
    first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Factory for SPMD executions.
///
/// A `World` is cheap; it holds only configuration. Each [`run`](World::run)
/// spawns `n` rank threads, hands each a [`Rank`], and joins them,
/// returning their results in rank order.
#[derive(Debug, Clone, Default)]
pub struct World {
    cfg: Config,
}

impl World {
    /// A world with the given configuration.
    pub fn new(cfg: Config) -> Self {
        World { cfg }
    }

    /// The configuration this world runs with.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Run `f` as an SPMD program on `n` ranks and collect each rank's
    /// return value in rank order.
    ///
    /// If any rank panics, the world is poisoned: blocked ranks abort, and
    /// the first panic is propagated to the caller.
    ///
    /// # Panics
    /// Panics if `n == 0`, if a rank panics, or on watchdog-detected
    /// deadlock.
    pub fn run<F, R>(&self, n: usize, f: F) -> Vec<R>
    where
        F: Fn(&Rank) -> R + Send + Sync,
        R: Send,
    {
        assert!(n > 0, "world must have at least one rank");
        let shared = Arc::new(Shared {
            mailboxes: (0..n).map(|_| Mailbox::new()).collect(),
            barrier: ClockBarrier::new(),
            cfg: self.cfg.clone(),
            poisoned: AtomicBool::new(false),
            first_panic: Mutex::new(None),
        });
        let epoch = Instant::now();
        let results: Vec<Option<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|id| {
                    let shared = Arc::clone(&shared);
                    let f = &f;
                    scope.spawn(move || {
                        let rank = Rank::new(id, n, Arc::clone(&shared), epoch);
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&rank)))
                        {
                            Ok(v) => Some(v),
                            Err(payload) => {
                                let mut slot = shared.first_panic.lock();
                                if slot.is_none() {
                                    *slot = Some(payload);
                                }
                                shared.poisoned.store(true, Ordering::Relaxed);
                                None
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread itself must not die"))
                .collect()
        });
        if let Some(payload) = shared.first_panic.lock().take() {
            std::panic::resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|r| r.expect("no panic recorded, so every rank must have a result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let out = World::new(Config::default()).run(1, |rank| rank.rank() + rank.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn results_come_back_in_rank_order() {
        let out = World::new(Config::default()).run(8, |rank| rank.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = World::new(Config::default()).run(0, |_| ());
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn rank_panic_propagates() {
        let _ = World::new(Config::default().with_watchdog(Duration::from_secs(2))).run(
            2,
            |rank| {
                if rank.rank() == 1 {
                    panic!("deliberate");
                }
                // rank 0 blocks forever; poisoning must release it.
                let _: u32 = rank.recv(1, 0);
            },
        );
    }
}
