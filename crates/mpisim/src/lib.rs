//! # mpisim — an in-process MPI-like message-passing substrate
//!
//! The iC2mpi thesis runs on real MPI over an SGI Origin-2000. This crate
//! provides the same programming model — SPMD ranks, point-to-point
//! send/receive with tag matching, nonblocking operations with requests,
//! barriers and collectives, `MPI_Wtime`-style timing — as an in-process
//! library. Every rank is an OS thread with its own mailbox; the program you
//! write against [`Rank`] is structured exactly like the thesis's MPI code
//! (`MPI_Isend`, `MPI_Recv`, `MPI_Irecv` + `MPI_Wait`, `MPI_Barrier`,
//! `MPI_Bcast`).
//!
//! ## Virtual time
//!
//! Reproducing 1–16 *dedicated* processors on a laptop is impossible with
//! wall-clock timing, so the substrate supports a **virtual-time network
//! model** ([`NetModel`], LogP-style): each rank carries a virtual clock,
//! compute is charged explicitly via [`Rank::advance`], and message receipt
//! advances the receiver's clock to `max(own, send_time + α + bytes/β)`.
//! Barriers synchronise every clock to the maximum. This yields
//! deterministic, host-independent execution times whose *shape* over the
//! processor count matches a real machine. A [`TimingMode::Real`] mode is
//! also available for wall-clock benchmarking.
//!
//! ## Quick example
//!
//! ```
//! use mpisim::{World, Config, Wire};
//!
//! let sums = World::new(Config::default()).run(4, |rank| {
//!     let me = rank.rank() as u64;
//!     // ring exchange: send to the right, receive from the left
//!     let right = (rank.rank() + 1) % rank.size();
//!     let left = (rank.rank() + rank.size() - 1) % rank.size();
//!     rank.send(right, 7, &me);
//!     let from_left: u64 = rank.recv(left, 7);
//!     rank.barrier();
//!     me + from_left
//! });
//! assert_eq!(sums.iter().sum::<u64>(), 2 * (0 + 1 + 2 + 3));
//! ```

pub mod comm;
pub mod disk;
pub mod faults;
pub mod mailbox;
pub mod net;
pub mod payload;
pub mod request;
pub mod stats;
pub mod trace;
pub mod wire;
pub mod world;

pub use comm::{Died, Rank, RetryPolicy, Tag, ANY_SOURCE};
pub use disk::{DiskCounters, DiskError, DiskTiming, VirtualDisk};
pub use faults::{DiskFault, FaultDecision, FaultPlan, FaultPlanError, MemRegion, PartitionSpec};
pub use mailbox::Envelope;
pub use net::{NetModel, TimingMode};
pub use payload::{
    encode_payload, payload_metrics, reset_payload_metrics, Payload, PayloadMetrics,
};
pub use request::{RecvRequest, SendRequest};
pub use stats::{CommStats, FaultStats, InvalidRank};
pub use trace::{ArgValue, TraceCollector, TraceEvent};
pub use wire::{frame_checksum, Wire, WireError};
pub use world::{Config, CtlSlot, CtlVerdict, FlowDeadlock, World};
