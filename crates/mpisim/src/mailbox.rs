//! Per-rank mailboxes with MPI-style (source, tag) matching.

use crate::payload::Payload;
use crate::wire::frame_checksum;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// A message in flight or waiting in a mailbox.
#[derive(Debug)]
pub struct Envelope {
    /// Sending rank.
    pub src: usize,
    /// Message tag (user tags are non-negative; collectives use negative).
    pub tag: i64,
    /// Virtual arrival time at the receiver (ignored in real-time mode).
    pub arrival: f64,
    /// Per-(source, tag) sequence number assigned at send time. Always 0
    /// when fault injection is off; under fault injection it lets the
    /// receiver restore send order and discard duplicates.
    pub seq: u64,
    /// Seeded checksum over the *pristine* payload, computed at send time
    /// (see [`frame_checksum`]). Always 0 when fault injection is off; the
    /// receiver only verifies it on mailboxes built with a verify seed.
    pub checksum: u64,
    /// Partition tombstone: the message was cut by an active network
    /// partition and only its metadata was delivered (the payload is
    /// absent). A tombstone lets the receiver observe the cut at a
    /// deterministic point in its schedule — exactly where the real message
    /// would have been — instead of relying on a wall-clock timeout. It is
    /// exempt from capacity accounting and checksum verification, and
    /// blocking receives skip it (a partition-unaware receiver wedges on
    /// the watchdog rather than decoding garbage).
    pub cut: bool,
    /// Encoded payload (possibly damaged in flight by the fault plan).
    /// Shared by reference count with the sender's pristine buffer — a
    /// retransmission, duplicate, or forwarded hop of the same frame holds
    /// the same allocation.
    pub bytes: Payload,
}

/// What a receive is willing to match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pattern {
    /// `None` matches any source (`MPI_ANY_SOURCE`).
    pub src: Option<usize>,
    /// Tag to match exactly.
    pub tag: i64,
}

impl Pattern {
    fn matches(&self, env: &Envelope) -> bool {
        self.tag == env.tag && self.src.is_none_or(|s| s == env.src)
    }
}

#[derive(Default)]
struct Inner {
    queue: Vec<Envelope>,
    /// Per-(source, tag) count of consumed in-order messages — the next
    /// expected sequence number. Only populated by ordered receives (fault
    /// injection); bounded by the set of live user tags.
    consumed: std::collections::HashMap<(usize, i64), u64>,
    /// Stale duplicates discarded by ordered receives.
    stale_discarded: u64,
    /// Damaged frames (checksum mismatch) discarded by ordered receives.
    corruptions_detected: u64,
    /// Largest queue depth ever observed.
    peak_depth: u64,
    /// Cumulative count of envelopes ever accepted into the queue
    /// (duplicates included, sealed-mailbox discards excluded). Monotonic;
    /// sampled at iteration boundaries it is deterministic, unlike the
    /// instantaneous queue depth.
    delivered: u64,
    /// Credits handed to senders that have not yet turned into deliveries.
    /// Only nonzero on bounded mailboxes.
    reserved: usize,
    /// Set when the owning rank crashes: further deliveries are dropped on
    /// the floor (the rank will never read them), modelling in-flight
    /// message loss to a dead peer.
    sealed: bool,
}

impl Inner {
    /// Data-plane occupancy counted against a bounded mailbox's capacity.
    /// Control-plane traffic (negative tags) is exempt so collectives and
    /// the failure detector can never be throttled into a deadlock.
    fn data_occupancy(&self) -> usize {
        self.queue.iter().filter(|e| e.tag >= 0 && !e.cut).count() + self.reserved
    }
}

/// One rank's incoming-message queue.
///
/// Messages from a given source with a given tag are delivered in send
/// order (the queue is scanned front to back), matching MPI's
/// non-overtaking guarantee. Under fault injection the queue order can be
/// perturbed (reordered or duplicated deliveries); [`Mailbox::recv`] with
/// `ordered = true` then matches by lowest sequence number and silently
/// discards duplicates of already-consumed messages, restoring exactly-once
/// in-order semantics at the receiver.
#[derive(Default)]
pub struct Mailbox {
    inner: Mutex<Inner>,
    cond: Condvar,
    /// When set, ordered receives verify each matching frame's checksum
    /// against [`frame_checksum`] under this seed and discard damaged
    /// frames (the receiver half of the NACK/retransmit protocol).
    verify_seed: Option<u64>,
    /// Data-plane envelope capacity. `None` is unbounded (the default);
    /// `Some(c)` makes senders acquire one of `c` credits before
    /// delivering, giving credit-based backpressure.
    capacity: Option<usize>,
}

impl Mailbox {
    /// Create an empty, unbounded, non-verifying mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a mailbox with integrity checking and/or a bounded capacity.
    pub fn configured(verify_seed: Option<u64>, capacity: Option<usize>) -> Self {
        assert!(capacity != Some(0), "mailbox capacity must be at least 1");
        Mailbox {
            verify_seed,
            capacity,
            ..Self::default()
        }
    }

    /// Whether this mailbox bounds its data-plane queue.
    pub fn is_bounded(&self) -> bool {
        self.capacity.is_some()
    }

    /// Lock, tolerating poison: a rank that panics while delivering must
    /// not cascade into secondary lock panics — the world has its own
    /// poisoning protocol with better diagnostics.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Deposit a message and wake any waiting receiver. `front` injects
    /// the message at the head of the queue (fault injection's reordering),
    /// violating the non-overtaking guarantee on purpose.
    ///
    /// This path bypasses capacity accounting: it is used for control-plane
    /// traffic and for fault-injected duplicate copies. Data-plane sends to
    /// a bounded mailbox go through [`Mailbox::try_reserve`] +
    /// [`Mailbox::deliver_reserved`].
    pub fn deliver(&self, env: Envelope, front: bool) {
        let mut inner = self.lock();
        inner.push(env, front);
        self.cond.notify_all();
    }

    /// Deposit a message using a credit previously obtained from
    /// [`Mailbox::try_reserve`].
    pub fn deliver_reserved(&self, env: Envelope, front: bool) {
        let mut inner = self.lock();
        inner.reserved = inner.reserved.saturating_sub(1);
        inner.push(env, front);
        self.cond.notify_all();
    }

    /// Try to acquire one delivery credit without blocking. Unbounded and
    /// sealed mailboxes always grant (a sealed mailbox discards deliveries,
    /// so holding senders hostage to a dead rank would be pointless).
    /// A granted credit must be spent with [`Mailbox::deliver_reserved`] or
    /// returned with [`Mailbox::release_credit`].
    pub fn try_reserve(&self) -> bool {
        let mut inner = self.lock();
        self.grant(&mut inner)
    }

    /// Park until something changes in this mailbox (a delivery, removal,
    /// credit release, or poke), or `slice` elapses. Used by credit-stalled
    /// senders between [`Mailbox::try_reserve`] retries.
    pub fn wait_change(&self, slice: Duration) {
        let inner = self.lock();
        let _ = self
            .cond
            .wait_timeout(inner, slice)
            .unwrap_or_else(|e| e.into_inner());
    }

    fn grant(&self, inner: &mut Inner) -> bool {
        match self.capacity {
            None => true,
            Some(_) if inner.sealed => true,
            Some(cap) => {
                if inner.data_occupancy() < cap {
                    inner.reserved += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Return an unspent credit (the send was dropped by the fault plan).
    pub fn release_credit(&self) {
        let mut inner = self.lock();
        inner.reserved = inner.reserved.saturating_sub(1);
        self.cond.notify_all();
    }

    /// Discard damaged and stale frames from the whole queue, exactly as an
    /// ordered receive would. Credit-stalled *senders* call this on the
    /// destination mailbox: garbage frames hold capacity slots until the
    /// owner's next receive, and the owner may itself be blocked sending —
    /// remote scavenging breaks that dependency. Counters stay attributed
    /// to this mailbox (the receiver), so totals are identical whoever
    /// performs the cleanup.
    pub fn scavenge(&self) {
        let mut inner = self.lock();
        let before = inner.queue.len();
        if let Some(seed) = self.verify_seed {
            inner.drop_corrupt(seed);
        }
        inner.drop_stale();
        if inner.queue.len() < before {
            self.cond.notify_all();
        }
    }

    /// Is the data-plane queue (plus outstanding credits) at capacity?
    /// Used by the flow-control deadlock detector; always false for
    /// unbounded or sealed mailboxes.
    pub fn at_capacity(&self) -> bool {
        let inner = self.lock();
        match self.capacity {
            None => false,
            Some(_) if inner.sealed => false,
            Some(cap) => inner.data_occupancy() >= cap,
        }
    }

    /// Seal the mailbox (the owning rank crashed): drop everything queued
    /// and refuse all future deliveries.
    pub fn seal(&self) {
        let mut inner = self.lock();
        inner.sealed = true;
        inner.queue.clear();
        self.cond.notify_all();
    }

    /// Discard all queued messages (rollback recovery: traffic from before
    /// the rollback point must not be mistaken for replayed traffic). The
    /// consumed-sequence map is kept — send sequence numbers are monotonic,
    /// so replayed messages always look fresh to ordered receives.
    pub fn purge(&self) {
        let mut inner = self.lock();
        inner.queue.clear();
        // Purging frees credits: wake any sender blocked on one.
        self.cond.notify_all();
    }

    /// Wake any receiver blocked on this mailbox so it can re-check
    /// world state (a peer just died).
    pub fn poke(&self) {
        let _inner = self.lock();
        self.cond.notify_all();
    }

    /// Blocking receive of the first message matching `pat`.
    ///
    /// With `ordered` set, the *lowest-sequence* matching message is taken
    /// instead of the first queued one, and stale duplicates (sequence
    /// numbers already consumed for their `(source, tag)` stream) are
    /// dropped on the floor — the receiver-side half of the reliable
    /// channel under fault injection.
    ///
    /// `watchdog` bounds the real-time wait; on expiry this returns `None`
    /// so the caller can panic with a useful deadlock diagnosis.
    pub fn recv(&self, pat: Pattern, watchdog: Duration, ordered: bool) -> Option<Envelope> {
        self.recv_where(pat, watchdog, ordered, true)
    }

    /// [`Mailbox::recv`] with explicit tombstone policy: with `accept_cut`
    /// false, partition tombstones never match — a blocking receiver that
    /// does not understand partitions waits (and eventually trips the
    /// watchdog) instead of consuming a payload-less frame.
    pub fn recv_where(
        &self,
        pat: Pattern,
        watchdog: Duration,
        ordered: bool,
        accept_cut: bool,
    ) -> Option<Envelope> {
        let mut inner = self.lock();
        loop {
            if ordered {
                let before = inner.queue.len();
                if let Some(seed) = self.verify_seed {
                    inner.drop_corrupt(seed);
                }
                inner.drop_stale();
                if inner.queue.len() < before {
                    // Discards free credits too.
                    self.cond.notify_all();
                }
            }
            let admit = |e: &Envelope| pat.matches(e) && (accept_cut || !e.cut);
            let found = if ordered {
                // Lowest (seq, src) among matches: deterministic given the
                // set of queued messages, regardless of delivery order.
                inner
                    .queue
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| admit(e))
                    .min_by_key(|(_, e)| (e.seq, e.src))
                    .map(|(i, _)| i)
            } else {
                inner.queue.iter().position(admit)
            };
            if let Some(idx) = found {
                let env = inner.queue.remove(idx);
                if ordered {
                    let next = inner.consumed.entry((env.src, env.tag)).or_insert(0);
                    *next = (*next).max(env.seq + 1);
                }
                // Removing an envelope frees a credit on bounded mailboxes:
                // wake any sender waiting for one.
                self.cond.notify_all();
                return Some(env);
            }
            let (guard, timeout) = self
                .cond
                .wait_timeout(inner, watchdog)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
            if timeout.timed_out() {
                return None;
            }
        }
    }

    /// Nonblocking probe: would `recv` with this pattern complete now?
    pub fn probe(&self, pat: Pattern) -> bool {
        self.lock().queue.iter().any(|e| pat.matches(e))
    }

    /// Number of queued messages (for diagnostics).
    pub fn len(&self) -> usize {
        self.lock().queue.len()
    }

    /// Whether no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Final receiver-side cleanup: discard (and count) any still-queued
    /// damaged or stale-duplicate frames.
    ///
    /// [`Mailbox::recv`] only runs its cleanup passes while someone is
    /// receiving, so a fault-injected duplicate delivered *after* the
    /// receiver's last ordered receive sits in the queue uncounted — and
    /// whether a given duplicate lands before or after that last pass
    /// depends on host thread scheduling, making `stale_discarded`
    /// flicker by ±1 between same-seed runs. Calling this once at the
    /// final statistics snapshot (after the closing barrier, when every
    /// in-flight delivery has landed) converges the counters to the same
    /// schedule-independent totals every run.
    pub fn reconcile(&self) {
        let mut inner = self.lock();
        let before = inner.queue.len();
        if let Some(seed) = self.verify_seed {
            inner.drop_corrupt(seed);
        }
        inner.drop_stale();
        if inner.queue.len() < before {
            // Discards free credits too.
            self.cond.notify_all();
        }
    }

    /// Stale duplicates discarded so far by ordered receives.
    pub fn stale_discarded(&self) -> u64 {
        self.lock().stale_discarded
    }

    /// Damaged frames caught and discarded so far by checksum verification.
    pub fn corruptions_detected(&self) -> u64 {
        self.lock().corruptions_detected
    }

    /// Largest queue depth ever observed.
    pub fn peak_depth(&self) -> u64 {
        self.lock().peak_depth
    }

    /// Cumulative count of envelopes ever accepted into the queue.
    pub fn delivered(&self) -> u64 {
        self.lock().delivered
    }

    /// Snapshot of queued (src, tag) pairs, for deadlock diagnostics.
    pub fn pending(&self) -> Vec<(usize, i64)> {
        self.lock().queue.iter().map(|e| (e.src, e.tag)).collect()
    }
}

impl Inner {
    /// Append (or front-insert) a message, tracking peak depth; sealed
    /// mailboxes silently discard.
    fn push(&mut self, env: Envelope, front: bool) {
        if self.sealed {
            return;
        }
        if front {
            self.queue.insert(0, env);
        } else {
            self.queue.push(env);
        }
        self.delivered += 1;
        self.peak_depth = self.peak_depth.max(self.queue.len() as u64);
    }

    /// Remove queued data-plane messages whose checksum does not verify —
    /// frames damaged in flight by the fault plan. Cleanup is queue-wide
    /// (not limited to the receive pattern): on bounded mailboxes a damaged
    /// frame from *any* stream holds a capacity slot hostage, so every
    /// cleanup pass must free all of them. Control-plane frames (negative
    /// tags) carry no checksum and are never touched. Consumed-sequence
    /// state is *not* advanced, so the sender's clean retransmission of the
    /// same sequence number is accepted, not mistaken for a stale
    /// duplicate. Runs before [`Inner::drop_stale`] so a damaged frame is
    /// always counted as a detected corruption, never as a stale duplicate
    /// (keeping both counters schedule-independent).
    fn drop_corrupt(&mut self, seed: u64) {
        let before = self.queue.len();
        self.queue.retain(|e| {
            // Tombstones carry no payload and no checksum: they are the
            // *detection* of a cut, not a damaged frame.
            e.tag < 0 || e.cut || frame_checksum(seed, e.src, e.tag, e.seq, &e.bytes) == e.checksum
        });
        self.corruptions_detected += (before - self.queue.len()) as u64;
    }

    /// Remove queued messages whose sequence number was already consumed
    /// for their (source, tag) stream — duplicates injected by the fault
    /// plan whose original has been received. Queue-wide for the same
    /// capacity-slot reason as [`Inner::drop_corrupt`].
    fn drop_stale(&mut self) {
        let consumed = &self.consumed;
        let before = self.queue.len();
        self.queue.retain(|e| {
            consumed
                .get(&(e.src, e.tag))
                .is_none_or(|&next| e.seq >= next)
        });
        self.stale_discarded += (before - self.queue.len()) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    const WD: Duration = Duration::from_secs(5);

    fn env(src: usize, tag: i64, byte: u8) -> Envelope {
        env_seq(src, tag, 0, byte)
    }

    fn env_seq(src: usize, tag: i64, seq: u64, byte: u8) -> Envelope {
        Envelope {
            src,
            tag,
            arrival: 0.0,
            seq,
            checksum: 0,
            cut: false,
            bytes: Payload::from(vec![byte]),
        }
    }

    /// Like `env_seq` but with a valid checksum for `seed`.
    fn env_ok(seed: u64, src: usize, tag: i64, seq: u64, byte: u8) -> Envelope {
        let mut e = env_seq(src, tag, seq, byte);
        e.checksum = frame_checksum(seed, src, tag, seq, &e.bytes);
        e
    }

    #[test]
    fn matches_by_src_and_tag() {
        let mb = Mailbox::new();
        mb.deliver(env(1, 10, 0xa), false);
        mb.deliver(env(2, 10, 0xb), false);
        mb.deliver(env(1, 20, 0xc), false);
        let got = mb
            .recv(
                Pattern {
                    src: Some(2),
                    tag: 10,
                },
                WD,
                false,
            )
            .unwrap();
        assert_eq!(got.bytes, vec![0xb]);
        let got = mb
            .recv(
                Pattern {
                    src: Some(1),
                    tag: 20,
                },
                WD,
                false,
            )
            .unwrap();
        assert_eq!(got.bytes, vec![0xc]);
        assert_eq!(got.seq, 0);
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn any_source_takes_first_matching() {
        let mb = Mailbox::new();
        mb.deliver(env(3, 5, 1), false);
        mb.deliver(env(1, 5, 2), false);
        let got = mb.recv(Pattern { src: None, tag: 5 }, WD, false).unwrap();
        assert_eq!(got.src, 3);
    }

    #[test]
    fn per_source_fifo_order_preserved() {
        let mb = Mailbox::new();
        for i in 0..5u8 {
            mb.deliver(env(1, 9, i), false);
        }
        for i in 0..5u8 {
            let got = mb
                .recv(
                    Pattern {
                        src: Some(1),
                        tag: 9,
                    },
                    WD,
                    false,
                )
                .unwrap();
            assert_eq!(got.bytes, vec![i]);
        }
    }

    #[test]
    fn recv_blocks_until_delivery() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let handle = std::thread::spawn(move || {
            mb2.recv(
                Pattern {
                    src: Some(0),
                    tag: 1,
                },
                WD,
                false,
            )
            .unwrap()
            .bytes
        });
        std::thread::sleep(Duration::from_millis(20));
        mb.deliver(env(0, 1, 42), false);
        assert_eq!(handle.join().unwrap(), vec![42]);
    }

    #[test]
    fn watchdog_times_out() {
        let mb = Mailbox::new();
        let got = mb.recv(
            Pattern { src: None, tag: 1 },
            Duration::from_millis(10),
            false,
        );
        assert!(got.is_none());
    }

    #[test]
    fn probe_does_not_consume() {
        let mb = Mailbox::new();
        mb.deliver(env(0, 1, 7), false);
        let pat = Pattern {
            src: Some(0),
            tag: 1,
        };
        assert!(mb.probe(pat));
        assert!(mb.probe(pat));
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn ordered_recv_restores_send_order() {
        let mb = Mailbox::new();
        // Delivered out of order (a reorder fault put seq 2 in front).
        mb.deliver(env_seq(0, 1, 2, 0xc), false);
        mb.deliver(env_seq(0, 1, 0, 0xa), false);
        mb.deliver(env_seq(0, 1, 1, 0xb), false);
        let pat = Pattern {
            src: Some(0),
            tag: 1,
        };
        for want in [0xa, 0xb, 0xc] {
            assert_eq!(mb.recv(pat, WD, true).unwrap().bytes, vec![want]);
        }
    }

    #[test]
    fn ordered_recv_discards_duplicates() {
        let mb = Mailbox::new();
        mb.deliver(env_seq(0, 1, 0, 0xa), false);
        mb.deliver(env_seq(0, 1, 0, 0xa), false); // duplicate
        mb.deliver(env_seq(0, 1, 1, 0xb), false);
        let pat = Pattern {
            src: Some(0),
            tag: 1,
        };
        assert_eq!(mb.recv(pat, WD, true).unwrap().bytes, vec![0xa]);
        assert_eq!(mb.recv(pat, WD, true).unwrap().bytes, vec![0xb]);
        assert!(mb.is_empty(), "duplicate must have been discarded");
        assert_eq!(mb.stale_discarded(), 1);
    }

    #[test]
    fn reconcile_counts_duplicates_delivered_after_the_last_recv() {
        let mb = Mailbox::new();
        let pat = Pattern {
            src: Some(0),
            tag: 1,
        };
        mb.deliver(env_seq(0, 1, 0, 0xa), false);
        assert_eq!(mb.recv(pat, WD, true).unwrap().bytes, vec![0xa]);
        // A fault-injected duplicate lands after the receiver's last
        // ordered receive: no recv-side cleanup pass will ever see it.
        mb.deliver(env_seq(0, 1, 0, 0xa), false);
        assert_eq!(mb.stale_discarded(), 0);
        mb.reconcile();
        assert!(mb.is_empty(), "reconcile discards the late duplicate");
        assert_eq!(mb.stale_discarded(), 1);
        // Idempotent: a second pass finds nothing new.
        mb.reconcile();
        assert_eq!(mb.stale_discarded(), 1);
    }

    #[test]
    fn sealed_mailbox_drops_everything() {
        let mb = Mailbox::new();
        mb.deliver(env(0, 1, 7), false);
        mb.seal();
        assert!(mb.is_empty(), "sealing discards queued traffic");
        mb.deliver(env(0, 1, 8), false);
        assert!(mb.is_empty(), "a sealed mailbox refuses new deliveries");
    }

    #[test]
    fn purge_clears_queue_but_keeps_consumed_seqs() {
        let mb = Mailbox::new();
        let pat = Pattern {
            src: Some(0),
            tag: 1,
        };
        mb.deliver(env_seq(0, 1, 0, 0xa), false);
        assert_eq!(mb.recv(pat, WD, true).unwrap().bytes, vec![0xa]);
        mb.deliver(env_seq(0, 1, 0, 0xa), false); // stale duplicate
        mb.deliver(env_seq(0, 1, 1, 0xb), false);
        mb.purge();
        assert!(mb.is_empty());
        // A replayed (fresh, higher-seq) message still gets through.
        mb.deliver(env_seq(0, 1, 2, 0xc), false);
        assert_eq!(mb.recv(pat, WD, true).unwrap().bytes, vec![0xc]);
    }

    #[test]
    fn verifying_recv_discards_damaged_frames_without_burning_the_seq() {
        let seed = 77;
        let mb = Mailbox::configured(Some(seed), None);
        let pat = Pattern {
            src: Some(0),
            tag: 1,
        };
        // A damaged frame (bad checksum) for seq 0 arrives first: its
        // checksum covers the pristine byte but the payload was flipped in
        // flight (payloads are immutable, so damage is a fresh buffer).
        let mut bad = env_ok(seed, 0, 1, 0, 0xa);
        bad.bytes = Payload::from(vec![0xa ^ 0x10]);
        mb.deliver(bad, false);
        // ...then the clean retransmission of the same seq.
        mb.deliver(env_ok(seed, 0, 1, 0, 0xa), false);
        let got = mb.recv(pat, WD, true).unwrap();
        assert_eq!(got.bytes, vec![0xa]);
        assert_eq!(mb.corruptions_detected(), 1);
        assert_eq!(mb.stale_discarded(), 0, "damage is not staleness");
        assert!(mb.is_empty());
    }

    #[test]
    fn bounded_mailbox_grants_and_returns_credits() {
        let mb = Mailbox::configured(None, Some(2));
        assert!(mb.is_bounded());
        assert!(mb.try_reserve());
        assert!(mb.try_reserve());
        assert!(!mb.try_reserve(), "capacity 2 grants exactly 2 credits");
        assert!(mb.at_capacity());
        mb.deliver_reserved(env(0, 1, 0xa), false);
        assert!(!mb.try_reserve(), "a spent credit occupies its slot");
        mb.release_credit();
        assert!(mb.try_reserve(), "a released credit frees its slot");
        mb.release_credit();
        // Draining the queue frees the occupied slot too.
        let pat = Pattern {
            src: Some(0),
            tag: 1,
        };
        assert_eq!(mb.recv(pat, WD, false).unwrap().bytes, vec![0xa]);
        assert!(!mb.at_capacity());
        assert!(mb.try_reserve());
    }

    #[test]
    fn control_plane_bypasses_capacity() {
        let mb = Mailbox::configured(None, Some(1));
        mb.deliver(env(0, -5, 1), false);
        mb.deliver(env(0, -5, 2), false);
        assert_eq!(mb.len(), 2);
        assert!(!mb.at_capacity(), "negative tags do not consume credits");
        assert!(mb.try_reserve());
    }

    #[test]
    fn sealed_mailboxes_do_not_throttle_senders() {
        let mb = Mailbox::configured(None, Some(1));
        assert!(mb.try_reserve());
        mb.seal();
        assert!(mb.try_reserve(), "sealed mailboxes always grant");
        assert!(!mb.at_capacity());
    }

    #[test]
    fn peak_depth_tracks_high_water_mark() {
        let mb = Mailbox::new();
        assert_eq!(mb.peak_depth(), 0);
        for i in 0..4u8 {
            mb.deliver(env(0, 1, i), false);
        }
        let pat = Pattern {
            src: Some(0),
            tag: 1,
        };
        for _ in 0..4 {
            mb.recv(pat, WD, false).unwrap();
        }
        assert!(mb.is_empty());
        assert_eq!(mb.peak_depth(), 4, "peak survives draining");
    }

    #[test]
    fn front_delivery_overtakes() {
        let mb = Mailbox::new();
        mb.deliver(env_seq(0, 1, 0, 0xa), false);
        mb.deliver(env_seq(0, 1, 1, 0xb), true); // reorder fault
                                                 // Unordered recv sees the overtaking message first...
        let pat = Pattern {
            src: Some(0),
            tag: 1,
        };
        assert_eq!(mb.recv(pat, WD, false).unwrap().bytes, vec![0xb]);
        // ...which is exactly what ordered recv protects against.
    }

    #[test]
    fn tombstones_bypass_capacity_and_blocking_receives() {
        let seed = 9;
        let mb = Mailbox::configured(Some(seed), Some(1));
        let mut tomb = env_seq(0, 1, 0, 0);
        tomb.cut = true;
        tomb.bytes = Payload::from(Vec::new());
        mb.deliver(tomb, false);
        assert!(
            !mb.at_capacity(),
            "a tombstone must not hold a capacity slot"
        );
        let pat = Pattern {
            src: Some(0),
            tag: 1,
        };
        // A cut-refusing (blocking-style) receive waits through it...
        assert!(mb
            .recv_where(pat, Duration::from_millis(10), false, false)
            .is_none());
        // ...and the ordered cleanup passes must not count it as damage.
        let got = mb
            .recv_where(pat, Duration::from_millis(10), true, true)
            .expect("cut-aware receives consume the tombstone");
        assert!(got.cut);
        assert_eq!(mb.corruptions_detected(), 0);
        assert!(mb.is_empty());
    }
}
