//! Per-rank mailboxes with MPI-style (source, tag) matching.

use parking_lot::{Condvar, Mutex};
use std::time::Duration;

/// A message in flight or waiting in a mailbox.
#[derive(Debug)]
pub struct Envelope {
    /// Sending rank.
    pub src: usize,
    /// Message tag (user tags are non-negative; collectives use negative).
    pub tag: i64,
    /// Virtual arrival time at the receiver (ignored in real-time mode).
    pub arrival: f64,
    /// Encoded payload.
    pub bytes: Vec<u8>,
}

/// What a receive is willing to match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pattern {
    /// `None` matches any source (`MPI_ANY_SOURCE`).
    pub src: Option<usize>,
    /// Tag to match exactly.
    pub tag: i64,
}

impl Pattern {
    fn matches(&self, env: &Envelope) -> bool {
        self.tag == env.tag && self.src.map_or(true, |s| s == env.src)
    }
}

#[derive(Default)]
struct Inner {
    queue: Vec<Envelope>,
}

/// One rank's incoming-message queue.
///
/// Messages from a given source with a given tag are delivered in send
/// order (the queue is scanned front to back), matching MPI's
/// non-overtaking guarantee.
#[derive(Default)]
pub struct Mailbox {
    inner: Mutex<Inner>,
    cond: Condvar,
}

impl Mailbox {
    /// Create an empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposit a message and wake any waiting receiver.
    pub fn deliver(&self, env: Envelope) {
        let mut inner = self.inner.lock();
        inner.queue.push(env);
        self.cond.notify_all();
    }

    /// Blocking receive of the first message matching `pat`.
    ///
    /// `watchdog` bounds the real-time wait; on expiry this returns `None`
    /// so the caller can panic with a useful deadlock diagnosis.
    pub fn recv(&self, pat: Pattern, watchdog: Duration) -> Option<Envelope> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(idx) = inner.queue.iter().position(|e| pat.matches(e)) {
                return Some(inner.queue.remove(idx));
            }
            if self.cond.wait_for(&mut inner, watchdog).timed_out() {
                return None;
            }
        }
    }

    /// Nonblocking probe: would `recv` with this pattern complete now?
    pub fn probe(&self, pat: Pattern) -> bool {
        self.inner.lock().queue.iter().any(|e| pat.matches(e))
    }

    /// Number of queued messages (for diagnostics).
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Whether no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of queued (src, tag) pairs, for deadlock diagnostics.
    pub fn pending(&self) -> Vec<(usize, i64)> {
        self.inner
            .lock()
            .queue
            .iter()
            .map(|e| (e.src, e.tag))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    const WD: Duration = Duration::from_secs(5);

    fn env(src: usize, tag: i64, byte: u8) -> Envelope {
        Envelope {
            src,
            tag,
            arrival: 0.0,
            bytes: vec![byte],
        }
    }

    #[test]
    fn matches_by_src_and_tag() {
        let mb = Mailbox::new();
        mb.deliver(env(1, 10, 0xa));
        mb.deliver(env(2, 10, 0xb));
        mb.deliver(env(1, 20, 0xc));
        let got = mb
            .recv(
                Pattern {
                    src: Some(2),
                    tag: 10,
                },
                WD,
            )
            .unwrap();
        assert_eq!(got.bytes, vec![0xb]);
        let got = mb
            .recv(
                Pattern {
                    src: Some(1),
                    tag: 20,
                },
                WD,
            )
            .unwrap();
        assert_eq!(got.bytes, vec![0xc]);
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn any_source_takes_first_matching() {
        let mb = Mailbox::new();
        mb.deliver(env(3, 5, 1));
        mb.deliver(env(1, 5, 2));
        let got = mb.recv(Pattern { src: None, tag: 5 }, WD).unwrap();
        assert_eq!(got.src, 3);
    }

    #[test]
    fn per_source_fifo_order_preserved() {
        let mb = Mailbox::new();
        for i in 0..5u8 {
            mb.deliver(env(1, 9, i));
        }
        for i in 0..5u8 {
            let got = mb
                .recv(
                    Pattern {
                        src: Some(1),
                        tag: 9,
                    },
                    WD,
                )
                .unwrap();
            assert_eq!(got.bytes, vec![i]);
        }
    }

    #[test]
    fn recv_blocks_until_delivery() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let handle = std::thread::spawn(move || {
            mb2.recv(
                Pattern {
                    src: Some(0),
                    tag: 1,
                },
                WD,
            )
            .unwrap()
            .bytes
        });
        std::thread::sleep(Duration::from_millis(20));
        mb.deliver(env(0, 1, 42));
        assert_eq!(handle.join().unwrap(), vec![42]);
    }

    #[test]
    fn watchdog_times_out() {
        let mb = Mailbox::new();
        let got = mb.recv(
            Pattern { src: None, tag: 1 },
            Duration::from_millis(10),
        );
        assert!(got.is_none());
    }

    #[test]
    fn probe_does_not_consume() {
        let mb = Mailbox::new();
        mb.deliver(env(0, 1, 7));
        let pat = Pattern {
            src: Some(0),
            tag: 1,
        };
        assert!(mb.probe(pat));
        assert!(mb.probe(pat));
        assert_eq!(mb.len(), 1);
    }
}
