//! Per-rank mailboxes with MPI-style (source, tag) matching.

use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// A message in flight or waiting in a mailbox.
#[derive(Debug)]
pub struct Envelope {
    /// Sending rank.
    pub src: usize,
    /// Message tag (user tags are non-negative; collectives use negative).
    pub tag: i64,
    /// Virtual arrival time at the receiver (ignored in real-time mode).
    pub arrival: f64,
    /// Per-(source, tag) sequence number assigned at send time. Always 0
    /// when fault injection is off; under fault injection it lets the
    /// receiver restore send order and discard duplicates.
    pub seq: u64,
    /// Encoded payload.
    pub bytes: Vec<u8>,
}

/// What a receive is willing to match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pattern {
    /// `None` matches any source (`MPI_ANY_SOURCE`).
    pub src: Option<usize>,
    /// Tag to match exactly.
    pub tag: i64,
}

impl Pattern {
    fn matches(&self, env: &Envelope) -> bool {
        self.tag == env.tag && self.src.is_none_or(|s| s == env.src)
    }
}

#[derive(Default)]
struct Inner {
    queue: Vec<Envelope>,
    /// Per-(source, tag) count of consumed in-order messages — the next
    /// expected sequence number. Only populated by ordered receives (fault
    /// injection); bounded by the set of live user tags.
    consumed: std::collections::HashMap<(usize, i64), u64>,
    /// Stale duplicates discarded by ordered receives.
    stale_discarded: u64,
    /// Set when the owning rank crashes: further deliveries are dropped on
    /// the floor (the rank will never read them), modelling in-flight
    /// message loss to a dead peer.
    sealed: bool,
}

/// One rank's incoming-message queue.
///
/// Messages from a given source with a given tag are delivered in send
/// order (the queue is scanned front to back), matching MPI's
/// non-overtaking guarantee. Under fault injection the queue order can be
/// perturbed (reordered or duplicated deliveries); [`Mailbox::recv`] with
/// `ordered = true` then matches by lowest sequence number and silently
/// discards duplicates of already-consumed messages, restoring exactly-once
/// in-order semantics at the receiver.
#[derive(Default)]
pub struct Mailbox {
    inner: Mutex<Inner>,
    cond: Condvar,
}

impl Mailbox {
    /// Create an empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lock, tolerating poison: a rank that panics while delivering must
    /// not cascade into secondary lock panics — the world has its own
    /// poisoning protocol with better diagnostics.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Deposit a message and wake any waiting receiver. `front` injects
    /// the message at the head of the queue (fault injection's reordering),
    /// violating the non-overtaking guarantee on purpose.
    pub fn deliver(&self, env: Envelope, front: bool) {
        let mut inner = self.lock();
        if inner.sealed {
            return;
        }
        if front {
            inner.queue.insert(0, env);
        } else {
            inner.queue.push(env);
        }
        self.cond.notify_all();
    }

    /// Seal the mailbox (the owning rank crashed): drop everything queued
    /// and refuse all future deliveries.
    pub fn seal(&self) {
        let mut inner = self.lock();
        inner.sealed = true;
        inner.queue.clear();
        self.cond.notify_all();
    }

    /// Discard all queued messages (rollback recovery: traffic from before
    /// the rollback point must not be mistaken for replayed traffic). The
    /// consumed-sequence map is kept — send sequence numbers are monotonic,
    /// so replayed messages always look fresh to ordered receives.
    pub fn purge(&self) {
        let mut inner = self.lock();
        inner.queue.clear();
    }

    /// Wake any receiver blocked on this mailbox so it can re-check
    /// world state (a peer just died).
    pub fn poke(&self) {
        let _inner = self.lock();
        self.cond.notify_all();
    }

    /// Blocking receive of the first message matching `pat`.
    ///
    /// With `ordered` set, the *lowest-sequence* matching message is taken
    /// instead of the first queued one, and stale duplicates (sequence
    /// numbers already consumed for their `(source, tag)` stream) are
    /// dropped on the floor — the receiver-side half of the reliable
    /// channel under fault injection.
    ///
    /// `watchdog` bounds the real-time wait; on expiry this returns `None`
    /// so the caller can panic with a useful deadlock diagnosis.
    pub fn recv(&self, pat: Pattern, watchdog: Duration, ordered: bool) -> Option<Envelope> {
        let mut inner = self.lock();
        loop {
            if ordered {
                inner.drop_stale(pat);
            }
            let found = if ordered {
                // Lowest (seq, src) among matches: deterministic given the
                // set of queued messages, regardless of delivery order.
                inner
                    .queue
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| pat.matches(e))
                    .min_by_key(|(_, e)| (e.seq, e.src))
                    .map(|(i, _)| i)
            } else {
                inner.queue.iter().position(|e| pat.matches(e))
            };
            if let Some(idx) = found {
                let env = inner.queue.remove(idx);
                if ordered {
                    let next = inner.consumed.entry((env.src, env.tag)).or_insert(0);
                    *next = (*next).max(env.seq + 1);
                }
                return Some(env);
            }
            let (guard, timeout) = self
                .cond
                .wait_timeout(inner, watchdog)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
            if timeout.timed_out() {
                return None;
            }
        }
    }

    /// Nonblocking probe: would `recv` with this pattern complete now?
    pub fn probe(&self, pat: Pattern) -> bool {
        self.lock().queue.iter().any(|e| pat.matches(e))
    }

    /// Number of queued messages (for diagnostics).
    pub fn len(&self) -> usize {
        self.lock().queue.len()
    }

    /// Whether no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stale duplicates discarded so far by ordered receives.
    pub fn stale_discarded(&self) -> u64 {
        self.lock().stale_discarded
    }

    /// Snapshot of queued (src, tag) pairs, for deadlock diagnostics.
    pub fn pending(&self) -> Vec<(usize, i64)> {
        self.lock().queue.iter().map(|e| (e.src, e.tag)).collect()
    }
}

impl Inner {
    /// Remove queued messages whose sequence number was already consumed
    /// for their (source, tag) stream — duplicates injected by the fault
    /// plan whose original has been received.
    fn drop_stale(&mut self, pat: Pattern) {
        let consumed = &self.consumed;
        let before = self.queue.len();
        self.queue.retain(|e| {
            !(pat.matches(e)
                && consumed
                    .get(&(e.src, e.tag))
                    .is_some_and(|&next| e.seq < next))
        });
        self.stale_discarded += (before - self.queue.len()) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    const WD: Duration = Duration::from_secs(5);

    fn env(src: usize, tag: i64, byte: u8) -> Envelope {
        env_seq(src, tag, 0, byte)
    }

    fn env_seq(src: usize, tag: i64, seq: u64, byte: u8) -> Envelope {
        Envelope {
            src,
            tag,
            arrival: 0.0,
            seq,
            bytes: vec![byte],
        }
    }

    #[test]
    fn matches_by_src_and_tag() {
        let mb = Mailbox::new();
        mb.deliver(env(1, 10, 0xa), false);
        mb.deliver(env(2, 10, 0xb), false);
        mb.deliver(env(1, 20, 0xc), false);
        let got = mb
            .recv(
                Pattern {
                    src: Some(2),
                    tag: 10,
                },
                WD,
                false,
            )
            .unwrap();
        assert_eq!(got.bytes, vec![0xb]);
        let got = mb
            .recv(
                Pattern {
                    src: Some(1),
                    tag: 20,
                },
                WD,
                false,
            )
            .unwrap();
        assert_eq!(got.bytes, vec![0xc]);
        assert_eq!(got.seq, 0);
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn any_source_takes_first_matching() {
        let mb = Mailbox::new();
        mb.deliver(env(3, 5, 1), false);
        mb.deliver(env(1, 5, 2), false);
        let got = mb.recv(Pattern { src: None, tag: 5 }, WD, false).unwrap();
        assert_eq!(got.src, 3);
    }

    #[test]
    fn per_source_fifo_order_preserved() {
        let mb = Mailbox::new();
        for i in 0..5u8 {
            mb.deliver(env(1, 9, i), false);
        }
        for i in 0..5u8 {
            let got = mb
                .recv(
                    Pattern {
                        src: Some(1),
                        tag: 9,
                    },
                    WD,
                    false,
                )
                .unwrap();
            assert_eq!(got.bytes, vec![i]);
        }
    }

    #[test]
    fn recv_blocks_until_delivery() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let handle = std::thread::spawn(move || {
            mb2.recv(
                Pattern {
                    src: Some(0),
                    tag: 1,
                },
                WD,
                false,
            )
            .unwrap()
            .bytes
        });
        std::thread::sleep(Duration::from_millis(20));
        mb.deliver(env(0, 1, 42), false);
        assert_eq!(handle.join().unwrap(), vec![42]);
    }

    #[test]
    fn watchdog_times_out() {
        let mb = Mailbox::new();
        let got = mb.recv(
            Pattern { src: None, tag: 1 },
            Duration::from_millis(10),
            false,
        );
        assert!(got.is_none());
    }

    #[test]
    fn probe_does_not_consume() {
        let mb = Mailbox::new();
        mb.deliver(env(0, 1, 7), false);
        let pat = Pattern {
            src: Some(0),
            tag: 1,
        };
        assert!(mb.probe(pat));
        assert!(mb.probe(pat));
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn ordered_recv_restores_send_order() {
        let mb = Mailbox::new();
        // Delivered out of order (a reorder fault put seq 2 in front).
        mb.deliver(env_seq(0, 1, 2, 0xc), false);
        mb.deliver(env_seq(0, 1, 0, 0xa), false);
        mb.deliver(env_seq(0, 1, 1, 0xb), false);
        let pat = Pattern {
            src: Some(0),
            tag: 1,
        };
        for want in [0xa, 0xb, 0xc] {
            assert_eq!(mb.recv(pat, WD, true).unwrap().bytes, vec![want]);
        }
    }

    #[test]
    fn ordered_recv_discards_duplicates() {
        let mb = Mailbox::new();
        mb.deliver(env_seq(0, 1, 0, 0xa), false);
        mb.deliver(env_seq(0, 1, 0, 0xa), false); // duplicate
        mb.deliver(env_seq(0, 1, 1, 0xb), false);
        let pat = Pattern {
            src: Some(0),
            tag: 1,
        };
        assert_eq!(mb.recv(pat, WD, true).unwrap().bytes, vec![0xa]);
        assert_eq!(mb.recv(pat, WD, true).unwrap().bytes, vec![0xb]);
        assert!(mb.is_empty(), "duplicate must have been discarded");
        assert_eq!(mb.stale_discarded(), 1);
    }

    #[test]
    fn sealed_mailbox_drops_everything() {
        let mb = Mailbox::new();
        mb.deliver(env(0, 1, 7), false);
        mb.seal();
        assert!(mb.is_empty(), "sealing discards queued traffic");
        mb.deliver(env(0, 1, 8), false);
        assert!(mb.is_empty(), "a sealed mailbox refuses new deliveries");
    }

    #[test]
    fn purge_clears_queue_but_keeps_consumed_seqs() {
        let mb = Mailbox::new();
        let pat = Pattern {
            src: Some(0),
            tag: 1,
        };
        mb.deliver(env_seq(0, 1, 0, 0xa), false);
        assert_eq!(mb.recv(pat, WD, true).unwrap().bytes, vec![0xa]);
        mb.deliver(env_seq(0, 1, 0, 0xa), false); // stale duplicate
        mb.deliver(env_seq(0, 1, 1, 0xb), false);
        mb.purge();
        assert!(mb.is_empty());
        // A replayed (fresh, higher-seq) message still gets through.
        mb.deliver(env_seq(0, 1, 2, 0xc), false);
        assert_eq!(mb.recv(pat, WD, true).unwrap().bytes, vec![0xc]);
    }

    #[test]
    fn front_delivery_overtakes() {
        let mb = Mailbox::new();
        mb.deliver(env_seq(0, 1, 0, 0xa), false);
        mb.deliver(env_seq(0, 1, 1, 0xb), true); // reorder fault
                                                 // Unordered recv sees the overtaking message first...
        let pat = Pattern {
            src: Some(0),
            tag: 1,
        };
        assert_eq!(mb.recv(pat, WD, false).unwrap().bytes, vec![0xb]);
        // ...which is exactly what ordered recv protects against.
    }
}
