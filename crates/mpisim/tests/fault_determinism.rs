//! Property-style test: `FaultPlan::decide` must be a *pure* function of
//! the message identity `(seed, src, dest, tag, seq, attempt)` — no hidden
//! state, no call-order dependence. The whole deterministic-replay story
//! (same seed ⇒ bit-identical runs, rollback recovery re-runs identical
//! iterations) rests on this property.

use mpisim::{FaultDecision, FaultPlan};

/// Deterministic identity sampler (xorshift; no external RNG crates).
struct Sampler(u64);

impl Sampler {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn identity(&mut self) -> (usize, usize, i64, u64, u32) {
        (
            (self.next() % 64) as usize, // src
            (self.next() % 64) as usize, // dest
            (self.next() % 1024) as i64, // tag (data plane)
            self.next() % 100_000,       // seq
            (self.next() % 4) as u32,    // attempt
        )
    }
}

fn plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_drop(0.2)
        .with_delay(0.2, 1e-4)
        .with_dup(0.2)
        .with_reorder(0.2)
}

fn decide_all(p: &FaultPlan, ids: &[(usize, usize, i64, u64, u32)]) -> Vec<FaultDecision> {
    ids.iter()
        .map(|&(s, d, t, q, a)| p.decide(s, d, t, q, a))
        .collect()
}

#[test]
fn decide_is_pure_over_a_thousand_sampled_identities() {
    let mut sampler = Sampler(0xdecafbad);
    let ids: Vec<_> = (0..1000).map(|_| sampler.identity()).collect();
    let p = plan(42);

    // Purity: repeated evaluation gives identical answers.
    let first = decide_all(&p, &ids);
    let second = decide_all(&p, &ids);
    assert_eq!(first, second);

    // Call-order independence: evaluating the identities in reverse, in an
    // interleaved order, and after a pile of unrelated decide() calls must
    // not change any answer.
    let mut reversed: Vec<_> = ids
        .iter()
        .rev()
        .map(|&(s, d, t, q, a)| p.decide(s, d, t, q, a))
        .collect();
    reversed.reverse();
    assert_eq!(first, reversed, "decide() must not depend on call order");

    for noise in 0..500 {
        p.decide(noise % 7, noise % 11, (noise % 13) as i64, noise as u64, 0);
    }
    assert_eq!(
        first,
        decide_all(&p, &ids),
        "interleaved unrelated calls must not perturb decisions"
    );

    // The identity is the *whole* key: a fresh plan with the same seed
    // agrees everywhere…
    assert_eq!(first, decide_all(&plan(42), &ids));

    // …and a different seed disagrees somewhere (at 20% fault rates over
    // 1000 identities, collision of every decision is impossible in
    // practice).
    assert_ne!(first, decide_all(&plan(43), &ids));

    // Sanity on the sampled population: the plan must actually fire.
    let fired = first
        .iter()
        .filter(|d| d.dropped || d.delayed || d.duplicated || d.reordered)
        .count();
    assert!(fired > 100, "only {fired}/1000 identities drew a fault");
}

#[test]
fn link_drop_decisions_are_pure_and_call_order_independent() {
    let mut sampler = Sampler(0x6c696e6b); // "link"
    let ids: Vec<_> = (0..1000).map(|_| sampler.identity()).collect();
    let mk = |seed| {
        FaultPlan::new(seed)
            .with_link_drop(3, 9, 0.5)
            .with_link_drop(9, 3, 0.25)
    };
    let p = mk(17);

    // Purity: repeated evaluation gives identical answers.
    let first = decide_all(&p, &ids);
    assert_eq!(first, decide_all(&p, &ids));

    // Call-order independence, with unrelated noise interleaved.
    for noise in 0..500 {
        p.decide(3, 9, (noise % 13) as i64, noise as u64, 0);
    }
    assert_eq!(
        first,
        decide_all(&p, &ids),
        "link-drop decisions must not depend on call order"
    );

    // Same seed from a fresh plan agrees everywhere; decisions are
    // link-local (only the two configured directed links ever fire).
    assert_eq!(first, decide_all(&mk(17), &ids));
    for (d, &(s, dst, ..)) in first.iter().zip(&ids) {
        if d.link_dropped {
            assert!(
                (s, dst) == (3, 9) || (s, dst) == (9, 3),
                "link drop fired off-link: {s} → {dst}"
            );
        }
    }

    // And the configured links do fire at roughly their probability.
    let hits = (0..4000)
        .filter(|&q| p.decide(3, 9, 5, q, 0).link_dropped)
        .count() as f64
        / 4000.0;
    assert!((0.45..0.55).contains(&hits), "observed rate {hits}");
}

#[test]
fn partition_cuts_are_a_pure_function_of_identity_and_time() {
    let groups = vec![vec![0, 1, 2], vec![3, 4]];
    let p = FaultPlan::new(5).with_partition(groups.clone(), 1.0, 2.0);
    let mut sampler = Sampler(0xcafe);
    let ids: Vec<_> = (0..1000).map(|_| sampler.identity()).collect();
    let times = [0.0, 0.5, 1.0, 1.5, 1.999, 2.0, 3.0];

    let eval = |plan: &FaultPlan| -> Vec<bool> {
        ids.iter()
            .flat_map(|&(s, d, t, ..)| {
                times
                    .iter()
                    .map(move |&at| plan.cut(s % 5, d % 5, t, at))
                    .collect::<Vec<_>>()
            })
            .collect()
    };

    // Purity + call-order independence (reverse evaluation agrees).
    let first = eval(&p);
    assert_eq!(first, eval(&p));
    let p_ref = &p;
    let mut rev: Vec<bool> = ids
        .iter()
        .rev()
        .flat_map(|&(s, d, t, ..)| {
            times
                .iter()
                .rev()
                .map(move |&at| p_ref.cut(s % 5, d % 5, t, at))
                .collect::<Vec<_>>()
        })
        .collect();
    // Reversing the flat result of (reversed ids × reversed times)
    // restores the original order, so equality with `first` proves the
    // answers did not depend on evaluation order.
    rev.reverse();
    assert_eq!(first, rev, "cut() must not depend on call order");

    // A fresh identical plan agrees bit-for-bit.
    let q = FaultPlan::new(5).with_partition(groups, 1.0, 2.0);
    assert_eq!(first, eval(&q));

    // The law itself: cut ⇔ (window active ∧ cross-group ∧ data plane).
    for &(s, d, t, ..) in &ids {
        let (s, d) = (s % 5, d % 5);
        let cross = (s <= 2) != (d <= 2);
        for &at in &times {
            let active = (1.0..2.0).contains(&at);
            assert_eq!(p.cut(s, d, t, at), active && cross && s != d && t >= 0);
            assert!(!p.cut(s, d, -1 - t, at), "control plane is never cut");
        }
    }
}

#[test]
fn control_plane_tags_are_never_faulted() {
    let mut sampler = Sampler(7);
    let p = plan(1);
    for _ in 0..1000 {
        let (s, d, t, q, a) = sampler.identity();
        let decision = p.decide(s, d, -(t.abs() + 1), q, a);
        assert_eq!(
            decision,
            FaultDecision::default(),
            "negative (collective/control) tags must pass untouched"
        );
    }
}
