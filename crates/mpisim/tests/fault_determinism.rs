//! Property-style test: `FaultPlan::decide` must be a *pure* function of
//! the message identity `(seed, src, dest, tag, seq, attempt)` — no hidden
//! state, no call-order dependence. The whole deterministic-replay story
//! (same seed ⇒ bit-identical runs, rollback recovery re-runs identical
//! iterations) rests on this property.

use mpisim::{FaultDecision, FaultPlan};

/// Deterministic identity sampler (xorshift; no external RNG crates).
struct Sampler(u64);

impl Sampler {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn identity(&mut self) -> (usize, usize, i64, u64, u32) {
        (
            (self.next() % 64) as usize, // src
            (self.next() % 64) as usize, // dest
            (self.next() % 1024) as i64, // tag (data plane)
            self.next() % 100_000,       // seq
            (self.next() % 4) as u32,    // attempt
        )
    }
}

fn plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_drop(0.2)
        .with_delay(0.2, 1e-4)
        .with_dup(0.2)
        .with_reorder(0.2)
}

fn decide_all(p: &FaultPlan, ids: &[(usize, usize, i64, u64, u32)]) -> Vec<FaultDecision> {
    ids.iter()
        .map(|&(s, d, t, q, a)| p.decide(s, d, t, q, a))
        .collect()
}

#[test]
fn decide_is_pure_over_a_thousand_sampled_identities() {
    let mut sampler = Sampler(0xdecafbad);
    let ids: Vec<_> = (0..1000).map(|_| sampler.identity()).collect();
    let p = plan(42);

    // Purity: repeated evaluation gives identical answers.
    let first = decide_all(&p, &ids);
    let second = decide_all(&p, &ids);
    assert_eq!(first, second);

    // Call-order independence: evaluating the identities in reverse, in an
    // interleaved order, and after a pile of unrelated decide() calls must
    // not change any answer.
    let mut reversed: Vec<_> = ids
        .iter()
        .rev()
        .map(|&(s, d, t, q, a)| p.decide(s, d, t, q, a))
        .collect();
    reversed.reverse();
    assert_eq!(first, reversed, "decide() must not depend on call order");

    for noise in 0..500 {
        p.decide(noise % 7, noise % 11, (noise % 13) as i64, noise as u64, 0);
    }
    assert_eq!(
        first,
        decide_all(&p, &ids),
        "interleaved unrelated calls must not perturb decisions"
    );

    // The identity is the *whole* key: a fresh plan with the same seed
    // agrees everywhere…
    assert_eq!(first, decide_all(&plan(42), &ids));

    // …and a different seed disagrees somewhere (at 20% fault rates over
    // 1000 identities, collision of every decision is impossible in
    // practice).
    assert_ne!(first, decide_all(&plan(43), &ids));

    // Sanity on the sampled population: the plan must actually fire.
    let fired = first
        .iter()
        .filter(|d| d.dropped || d.delayed || d.duplicated || d.reordered)
        .count();
    assert!(fired > 100, "only {fired}/1000 identities drew a fault");
}

#[test]
fn control_plane_tags_are_never_faulted() {
    let mut sampler = Sampler(7);
    let p = plan(1);
    for _ in 0..1000 {
        let (s, d, t, q, a) = sampler.identity();
        let decision = p.decide(s, d, -(t.abs() + 1), q, a);
        assert_eq!(
            decision,
            FaultDecision::default(),
            "negative (collective/control) tags must pass untouched"
        );
    }
}
