//! Randomised tests for the substrate: wire codecs and virtual-time
//! invariants under arbitrary programs.
//!
//! Inputs are drawn from the in-tree [`SplitMix64`] generator with fixed
//! seeds, so every run explores the same cases — hermetic and
//! reproducible with no external dependencies.

use ic2_rng::SplitMix64;
use mpisim::{Config, NetModel, Wire, World};
use std::time::Duration;

fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
    let bytes = v.to_bytes();
    let back = T::from_bytes(&bytes);
    assert_eq!(back.as_ref().ok(), Some(v));
}

fn arb_string(rng: &mut SplitMix64) -> String {
    let len = rng.gen_range(0..40);
    (0..len)
        .map(|_| char::from_u32(rng.next_u64() as u32 % 0xD7FF).unwrap_or('?'))
        .collect()
}

#[test]
fn wire_roundtrips_scalars() {
    let mut rng = SplitMix64::new(0xA11CE);
    for _ in 0..256 {
        roundtrip(&rng.next_u64());
        roundtrip(&(rng.next_u64() as i64));
        let f = f64::from_bits(rng.next_u64());
        if !f.is_nan() {
            roundtrip(&f);
        }
        roundtrip(&rng.chance(0.5));
    }
    // Edges the generator may miss.
    for v in [0u64, 1, u64::MAX] {
        roundtrip(&v);
    }
    for v in [i64::MIN, -1, 0, i64::MAX] {
        roundtrip(&v);
    }
    for v in [
        0.0f64,
        -0.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::MIN_POSITIVE,
    ] {
        roundtrip(&v);
    }
}

#[test]
fn wire_roundtrips_compounds() {
    let mut rng = SplitMix64::new(0xB0B);
    for _ in 0..128 {
        let v: Vec<(u32, i64)> = (0..rng.gen_range(0..50))
            .map(|_| (rng.next_u64() as u32, rng.next_u64() as i64))
            .collect();
        roundtrip(&v);
        let s = arb_string(&mut rng);
        roundtrip(&s);
        let o = if rng.chance(0.5) {
            Some(rng.next_u64() as u32)
        } else {
            None
        };
        roundtrip(&o);
        roundtrip(&vec![(s, o)]);
    }
}

#[test]
fn wire_rejects_truncation() {
    let mut rng = SplitMix64::new(0xC0FFEE);
    for _ in 0..128 {
        let v: Vec<u64> = (0..rng.gen_range(1..20)).map(|_| rng.next_u64()).collect();
        let bytes = v.to_bytes();
        // Chop off the tail: must error, never panic or wrap.
        let cut = &bytes[..bytes.len() - 1];
        assert!(Vec::<u64>::from_bytes(cut).is_err());
    }
}

#[test]
fn clocks_never_regress_and_end_synced() {
    let mut rng = SplitMix64::new(0xD0C);
    for _ in 0..12 {
        let n = rng.gen_range(2..6);
        let grains: Vec<u32> = (0..6).map(|_| rng.gen_range(1..200) as u32).collect();
        let rounds = rng.gen_range(1..6) as u32;
        let cfg =
            Config::virtual_time(NetModel::origin2000()).with_watchdog(Duration::from_secs(10));
        let out = World::new(cfg).run(n, |rank| {
            let mut last = rank.wtime();
            for round in 0..rounds {
                let grain = grains[(rank.rank() + round as usize) % grains.len()];
                rank.advance(grain as f64 * 1e-6);
                let right = (rank.rank() + 1) % rank.size();
                let left = (rank.rank() + rank.size() - 1) % rank.size();
                rank.send(right, round, &(rank.rank() as u64));
                let _: u64 = rank.recv(left, round);
                let now = rank.wtime();
                assert!(now >= last, "clock regressed {last} -> {now}");
                last = now;
            }
            rank.barrier();
            rank.wtime()
        });
        // After the final barrier every clock agrees.
        for t in &out {
            assert!((t - out[0]).abs() < 1e-12, "clocks diverge: {out:?}");
        }
    }
}

#[test]
fn collectives_agree_with_direct_computation() {
    let mut rng = SplitMix64::new(0xE1E);
    for _ in 0..12 {
        let n = rng.gen_range(2..7);
        let values: Vec<i64> = (0..7).map(|_| rng.next_u64() as i64).collect();
        let cfg = Config::virtual_time(NetModel::zero()).with_watchdog(Duration::from_secs(10));
        let values_ref = &values;
        let out = World::new(cfg).run(n, |rank| {
            let mine = values_ref[rank.rank()];
            let gathered = rank.gather(0, &mine);
            let max = rank.allreduce(mine, i64::max);
            let mut from_root = if rank.rank() == 0 { 99i64 } else { 0 };
            rank.bcast(0, &mut from_root);
            (gathered, max, from_root)
        });
        let expect_max = values[..n].iter().copied().max().unwrap();
        assert_eq!(out[0].0.as_ref().unwrap(), &values[..n].to_vec());
        for (i, (g, max, root_val)) in out.iter().enumerate() {
            if i != 0 {
                assert!(g.is_none());
            }
            assert_eq!(*max, expect_max);
            assert_eq!(*root_val, 99);
        }
    }
}

#[test]
fn arbitrary_roots_work_for_collectives() {
    let mut rng = SplitMix64::new(0xF00);
    for _ in 0..12 {
        let n = rng.gen_range(1..8);
        let root = rng.gen_range(0..n);
        let cfg =
            Config::virtual_time(NetModel::origin2000()).with_watchdog(Duration::from_secs(10));
        let out = World::new(cfg).run(n, |rank| {
            let mut v = if rank.rank() == root { 4242u32 } else { 0 };
            rank.bcast(root, &mut v);
            let g = rank.gather(root, &(rank.rank() as u32));
            (v, g)
        });
        for (i, (v, g)) in out.iter().enumerate() {
            assert_eq!(*v, 4242);
            assert_eq!(g.is_some(), i == root);
        }
        assert_eq!(
            out[root].1.as_ref().unwrap(),
            &(0..n as u32).collect::<Vec<_>>()
        );
    }
}
