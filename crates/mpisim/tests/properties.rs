//! Property-based tests for the substrate: wire codecs and virtual-time
//! invariants under arbitrary programs.

use mpisim::{Config, NetModel, Wire, World};
use proptest::prelude::*;
use std::time::Duration;

fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) -> Result<(), TestCaseError> {
    let bytes = v.to_bytes();
    let back = T::from_bytes(&bytes);
    prop_assert_eq!(back.as_ref().ok(), Some(v));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn wire_roundtrips_scalars(a in any::<u64>(), b in any::<i64>(), c in any::<f64>(), d in any::<bool>()) {
        roundtrip(&a)?;
        roundtrip(&b)?;
        if !c.is_nan() {
            roundtrip(&c)?;
        }
        roundtrip(&d)?;
    }

    #[test]
    fn wire_roundtrips_compounds(
        v in proptest::collection::vec((any::<u32>(), any::<i64>()), 0..50),
        s in ".{0,40}",
        o in proptest::option::of(any::<u32>()),
    ) {
        roundtrip(&v)?;
        roundtrip(&s.to_string())?;
        roundtrip(&o)?;
        roundtrip(&vec![(s.to_string(), o)])?;
    }

    #[test]
    fn wire_rejects_truncation(v in proptest::collection::vec(any::<u64>(), 1..20)) {
        let bytes = v.to_bytes();
        // Chop off the tail: must error, never panic or wrap.
        let cut = &bytes[..bytes.len() - 1];
        prop_assert!(Vec::<u64>::from_bytes(cut).is_err());
    }
}

proptest! {
    // World-spawning cases are heavier; fewer of them.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn clocks_never_regress_and_end_synced(
        n in 2usize..6,
        grains in proptest::collection::vec(1u32..200, 6),
        rounds in 1u32..6,
    ) {
        let cfg = Config::virtual_time(NetModel::origin2000())
            .with_watchdog(Duration::from_secs(10));
        let out = World::new(cfg).run(n, |rank| {
            let mut last = rank.wtime();
            for round in 0..rounds {
                let grain = grains[(rank.rank() + round as usize) % grains.len()];
                rank.advance(grain as f64 * 1e-6);
                let right = (rank.rank() + 1) % rank.size();
                let left = (rank.rank() + rank.size() - 1) % rank.size();
                rank.send(right, round, &(rank.rank() as u64));
                let _: u64 = rank.recv(left, round);
                let now = rank.wtime();
                prop_assert!(now >= last, "clock regressed {last} -> {now}");
                last = now;
            }
            rank.barrier();
            Ok(rank.wtime())
        }).into_iter().collect::<Result<Vec<f64>, TestCaseError>>()?;
        // After the final barrier every clock agrees.
        for t in &out {
            prop_assert!((t - out[0]).abs() < 1e-12, "clocks diverge: {out:?}");
        }
    }

    #[test]
    fn collectives_agree_with_direct_computation(
        n in 2usize..7,
        values in proptest::collection::vec(any::<i64>(), 7),
    ) {
        let cfg = Config::virtual_time(NetModel::zero())
            .with_watchdog(Duration::from_secs(10));
        let out = World::new(cfg).run(n, |rank| {
            let mine = values[rank.rank()];
            let gathered = rank.gather(0, &mine);
            let max = rank.allreduce(mine, i64::max);
            let mut from_root = if rank.rank() == 0 { 99i64 } else { 0 };
            rank.bcast(0, &mut from_root);
            (gathered, max, from_root)
        });
        let expect_max = values[..n].iter().copied().max().unwrap();
        prop_assert_eq!(out[0].0.as_ref().unwrap(), &values[..n].to_vec());
        for (i, (g, max, root_val)) in out.iter().enumerate() {
            if i != 0 {
                prop_assert!(g.is_none());
            }
            prop_assert_eq!(*max, expect_max);
            prop_assert_eq!(*root_val, 99);
        }
    }

    #[test]
    fn arbitrary_roots_work_for_collectives(n in 1usize..8, root_pick in any::<usize>()) {
        let root = root_pick % n;
        let cfg = Config::virtual_time(NetModel::origin2000())
            .with_watchdog(Duration::from_secs(10));
        let out = World::new(cfg).run(n, |rank| {
            let mut v = if rank.rank() == root { 4242u32 } else { 0 };
            rank.bcast(root, &mut v);
            let g = rank.gather(root, &(rank.rank() as u32));
            (v, g)
        });
        for (i, (v, g)) in out.iter().enumerate() {
            prop_assert_eq!(*v, 4242);
            prop_assert_eq!(g.is_some(), i == root);
        }
        prop_assert_eq!(
            out[root].1.as_ref().unwrap(),
            &(0..n as u32).collect::<Vec<_>>()
        );
    }
}
