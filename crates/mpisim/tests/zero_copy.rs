//! Zero-copy transport accounting: the process-global payload metrics
//! ([`mpisim::payload_metrics`]) are the test hook that proves the
//! `Arc`-backed [`mpisim::Payload`] actually shares one allocation across
//! retransmission attempts, broadcast fan-out, and gather forwarding.
//!
//! The counters are process-global, so every test in this binary takes
//! `METRICS_LOCK` and resets the counters before its world runs.

use mpisim::{
    payload_metrics, reset_payload_metrics, Config, FaultPlan, NetModel, RetryPolicy, World,
};
use std::sync::Mutex;
use std::time::Duration;

static METRICS_LOCK: Mutex<()> = Mutex::new(());

fn cfg() -> Config {
    Config::virtual_time(NetModel::origin2000()).with_watchdog(Duration::from_secs(30))
}

/// Retransmissions must not allocate new payload bytes: one allocation per
/// logical message, however many attempts the fault plan forces. Drops are
/// the right fault here — a dropped attempt is retried from the *same*
/// shared buffer, whereas a corrupted delivery legitimately allocates the
/// damaged copy (covered separately below).
#[test]
fn retransmits_allocate_zero_new_payload_bytes() {
    let _guard = METRICS_LOCK.lock().unwrap();
    const MSGS: u64 = 40;
    let plan = FaultPlan::new(11).with_drop(0.5).with_retry(1e-3, 16);
    reset_payload_metrics();
    let stats = World::new(cfg().with_faults(plan)).run(2, |rank| {
        for i in 0..MSGS {
            if rank.rank() == 0 {
                let payload: Vec<u64> = (0..32).map(|j| i * 100 + j).collect();
                assert!(rank.send_reliable(1, 7, &payload, RetryPolicy::Escalate));
            } else {
                let got: Vec<u64> = rank.recv(0, 7);
                assert_eq!(got.len(), 32);
            }
        }
        rank.stats()
    });
    let m = payload_metrics();
    let retries = stats[0].faults.retries;
    assert!(retries > 0, "the drop plan must force retransmissions");
    assert_eq!(
        m.allocs, MSGS,
        "exactly one payload allocation per logical message \
         ({} retries must not allocate; got {:?})",
        retries, m
    );
    // Every transmitted attempt (first try or retry) shares the buffer by
    // reference count instead of copying it.
    assert!(
        m.shared_clones >= MSGS,
        "each delivered attempt must be a refcount bump, got {:?}",
        m
    );
}

/// Corrupted deliveries are the one sanctioned copy: the receiver must see
/// damaged bytes without the sender's pristine buffer being touched, so
/// each mangled attempt allocates exactly one damaged image (copy-on-write
/// mangling). Clean attempts still share the original.
#[test]
fn corruption_allocates_exactly_one_damaged_copy_per_mangled_attempt() {
    let _guard = METRICS_LOCK.lock().unwrap();
    const MSGS: u64 = 40;
    let plan = FaultPlan::new(23).with_corrupt(0.3).with_retry(1e-3, 16);
    reset_payload_metrics();
    let stats = World::new(cfg().with_faults(plan)).run(2, |rank| {
        for i in 0..MSGS {
            if rank.rank() == 0 {
                let payload: Vec<u64> = (0..32).map(|j| i * 100 + j).collect();
                assert!(rank.send_reliable(1, 7, &payload, RetryPolicy::Escalate));
            } else {
                let got: Vec<u64> = rank.recv(0, 7);
                assert_eq!(got.len(), 32);
            }
        }
        rank.stats()
    });
    let m = payload_metrics();
    let corrupted = stats[0].faults.corrupted;
    assert!(corrupted > 0, "the plan must actually mangle frames");
    assert_eq!(
        m.allocs,
        MSGS + corrupted,
        "one allocation per message plus one damaged copy per mangled \
         attempt, got {:?}",
        m
    );
}

/// Broadcast serializes once at the root; every tree edge — including the
/// interior ranks' forwarding of a payload they received — is a refcount
/// bump on that single allocation.
#[test]
fn bcast_fan_out_shares_a_single_allocation() {
    let _guard = METRICS_LOCK.lock().unwrap();
    const N: usize = 8;
    reset_payload_metrics();
    World::new(cfg()).run(N, |rank| {
        let mut value: Vec<u64> = if rank.rank() == 0 {
            (0..256).collect()
        } else {
            Vec::new()
        };
        rank.bcast(0, &mut value);
        assert_eq!(value.len(), 256);
        assert_eq!(value[255], 255);
    });
    let m = payload_metrics();
    assert_eq!(
        m.allocs, 1,
        "bcast must serialize exactly once at the root, got {:?}",
        m
    );
    // A binomial tree over N ranks has N-1 edges; each edge's transmit
    // clones the shared payload by refcount.
    assert!(
        m.shared_clones >= (N as u64) - 1,
        "every tree edge must share the root's buffer, got {:?}",
        m
    );
}

/// Gather serializes once per non-root hop: each interior rank builds its
/// aggregate wire image in place and appends its children's entry bodies
/// verbatim — received values are never decoded, re-encoded, or cloned on
/// the way up.
#[test]
fn gather_serializes_once_per_hop() {
    let _guard = METRICS_LOCK.lock().unwrap();
    const N: usize = 8;
    reset_payload_metrics();
    let rows = World::new(cfg()).run(N, |rank| {
        let value: Vec<u64> = (0..64).map(|j| rank.rank() as u64 * 1000 + j).collect();
        rank.gather(0, &value)
    });
    let gathered = rows[0].as_ref().expect("root receives the gather");
    assert_eq!(gathered.len(), N);
    for (r, row) in gathered.iter().enumerate() {
        assert_eq!(row[0], r as u64 * 1000);
    }
    for row in rows.iter().skip(1) {
        assert!(row.is_none());
    }
    let m = payload_metrics();
    assert_eq!(
        m.allocs,
        (N as u64) - 1,
        "each of the {} non-root ranks serializes its aggregate exactly \
         once; the root only decodes, got {:?}",
        N - 1,
        m
    );
}

/// The value type flowing through gather is never cloned: forwarding works
/// on wire bytes, so a `Clone` bound that counts its invocations must
/// observe zero.
#[test]
fn gather_never_clones_the_value_type() {
    use mpisim::Wire;
    use std::sync::atomic::{AtomicU64, Ordering};

    static CLONES: AtomicU64 = AtomicU64::new(0);

    #[derive(Debug, PartialEq)]
    struct Tracked(u64);

    impl Clone for Tracked {
        fn clone(&self) -> Self {
            CLONES.fetch_add(1, Ordering::Relaxed);
            Tracked(self.0)
        }
    }

    impl Wire for Tracked {
        fn encode(&self, out: &mut Vec<u8>) {
            self.0.encode(out);
        }
        fn decode(buf: &mut &[u8]) -> Result<Self, mpisim::WireError> {
            Ok(Tracked(u64::decode(buf)?))
        }
    }

    let _guard = METRICS_LOCK.lock().unwrap();
    const N: usize = 8;
    CLONES.store(0, Ordering::Relaxed);
    let rows = World::new(cfg()).run(N, |rank| rank.gather(0, &Tracked(rank.rank() as u64 * 7)));
    let gathered = rows[0].as_ref().expect("root receives the gather");
    assert_eq!(gathered.len(), N);
    for (r, t) in gathered.iter().enumerate() {
        assert_eq!(t.0, r as u64 * 7);
    }
    assert_eq!(
        CLONES.load(Ordering::Relaxed),
        0,
        "gather must forward wire bytes, never clone values"
    );
}
