//! End-to-end semantics of the message-passing substrate: delivery,
//! ordering, collectives, virtual-time accounting, and determinism.

use mpisim::{Config, NetModel, Wire, World};
use std::time::Duration;

fn cfg(net: NetModel) -> Config {
    Config::virtual_time(net).with_watchdog(Duration::from_secs(10))
}

#[test]
fn ring_exchange_delivers_correct_values() {
    let n = 8;
    let out = World::new(cfg(NetModel::origin2000())).run(n, |rank| {
        let right = (rank.rank() + 1) % rank.size();
        let left = (rank.rank() + rank.size() - 1) % rank.size();
        rank.send(right, 1, &(rank.rank() as u64));
        let v: u64 = rank.recv(left, 1);
        v
    });
    for (i, v) in out.iter().enumerate() {
        let left = (i + n - 1) % n;
        assert_eq!(*v, left as u64);
    }
}

#[test]
fn self_send_works() {
    let out = World::new(cfg(NetModel::zero())).run(1, |rank| {
        rank.send(0, 3, &1234u32);
        rank.recv::<u32>(0, 3)
    });
    assert_eq!(out, vec![1234]);
}

#[test]
fn messages_with_different_tags_do_not_interfere() {
    let out = World::new(cfg(NetModel::zero())).run(2, |rank| {
        if rank.rank() == 0 {
            rank.send(1, 10, &1u32);
            rank.send(1, 20, &2u32);
            rank.send(1, 30, &3u32);
            0
        } else {
            // Receive deliberately out of send order.
            let c: u32 = rank.recv(0, 30);
            let a: u32 = rank.recv(0, 10);
            let b: u32 = rank.recv(0, 20);
            (a * 100 + b * 10 + c) as usize
        }
    });
    assert_eq!(out[1], 123);
}

#[test]
fn bcast_reaches_everyone() {
    let out = World::new(cfg(NetModel::origin2000())).run(6, |rank| {
        let mut v: u64 = if rank.rank() == 2 { 777 } else { 0 };
        rank.bcast(2, &mut v);
        v
    });
    assert_eq!(out, vec![777; 6]);
}

#[test]
fn gather_collects_in_rank_order() {
    let out = World::new(cfg(NetModel::origin2000()))
        .run(5, |rank| rank.gather(0, &(rank.rank() as u32 * 2)));
    assert_eq!(out[0].as_ref().unwrap(), &vec![0, 2, 4, 6, 8]);
    assert!(out[1..].iter().all(|o| o.is_none()));
}

#[test]
fn allreduce_folds_across_ranks() {
    let out = World::new(cfg(NetModel::origin2000())).run(7, |rank| {
        rank.allreduce(rank.rank() as u64 + 1, |a, b| a.max(b))
    });
    assert_eq!(out, vec![7; 7]);
}

#[test]
fn successive_collectives_do_not_cross_talk() {
    let out = World::new(cfg(NetModel::origin2000())).run(4, |rank| {
        let mut a = if rank.rank() == 0 { 1u32 } else { 0 };
        rank.bcast(0, &mut a);
        let mut b = if rank.rank() == 1 { 2u32 } else { 0 };
        rank.bcast(1, &mut b);
        let g = rank.gather(0, &(a + b));
        (a, b, g)
    });
    for (a, b, _) in &out {
        assert_eq!((*a, *b), (1, 2));
    }
    assert_eq!(out[0].2.as_ref().unwrap(), &vec![3; 4]);
}

#[test]
fn virtual_clock_charges_compute_and_messages() {
    let net = NetModel {
        latency: 1.0,
        per_byte: 0.0,
        send_overhead: 0.25,
        recv_overhead: 0.5,
        barrier_cost: 0.0,
    };
    let out = World::new(cfg(net)).run(2, |rank| {
        if rank.rank() == 0 {
            rank.advance(2.0);
            rank.send(1, 1, &0u8); // send completes at 2.25, arrives at 3.25
            rank.wtime()
        } else {
            let _: u8 = rank.recv(0, 1); // clock = max(0, 3.25) + 0.5
            rank.wtime()
        }
    });
    assert!((out[0] - 2.25).abs() < 1e-12, "sender clock {}", out[0]);
    assert!((out[1] - 3.75).abs() < 1e-12, "receiver clock {}", out[1]);
}

#[test]
fn barrier_synchronises_clocks_to_max() {
    let net = NetModel {
        barrier_cost: 0.125,
        ..NetModel::zero()
    };
    let out = World::new(cfg(net)).run(4, |rank| {
        rank.advance(rank.rank() as f64);
        rank.barrier();
        rank.wtime()
    });
    for t in out {
        assert!((t - 3.125).abs() < 1e-12, "clock after barrier {t}");
    }
}

#[test]
fn irecv_overlap_rewards_compute_between_post_and_wait() {
    // Receiver computes 5s between posting and waiting; message arrives at
    // t=1. Overlapped wait should cost only the recv overhead, not 1+5.
    let net = NetModel {
        latency: 1.0,
        per_byte: 0.0,
        send_overhead: 0.0,
        recv_overhead: 0.0,
        barrier_cost: 0.0,
    };
    let out = World::new(cfg(net)).run(2, |rank| {
        if rank.rank() == 0 {
            rank.send(1, 1, &9u8);
            0.0
        } else {
            let req = rank.irecv::<u8>(0, 1);
            rank.advance(5.0);
            let _ = req.wait(rank);
            rank.wtime()
        }
    });
    assert!((out[1] - 5.0).abs() < 1e-12, "overlapped clock {}", out[1]);
}

#[test]
fn virtual_time_is_deterministic_across_runs() {
    let run = || {
        World::new(cfg(NetModel::origin2000())).run(8, |rank| {
            let mut acc = 0u64;
            for iter in 0..20 {
                rank.advance(0.0003);
                let right = (rank.rank() + 1) % rank.size();
                let left = (rank.rank() + rank.size() - 1) % rank.size();
                rank.send(right, iter, &(acc + rank.rank() as u64));
                acc += rank.recv::<u64>(left, iter);
                rank.barrier();
            }
            (acc, rank.wtime())
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn stats_track_traffic() {
    let out = World::new(cfg(NetModel::origin2000())).run(2, |rank| {
        if rank.rank() == 0 {
            rank.send(1, 1, &vec![1u64, 2, 3]);
        } else {
            let _: Vec<u64> = rank.recv(0, 1);
        }
        rank.barrier();
        rank.stats()
    });
    // Vec<u64> of 3 elements: 8-byte length + 3*8 payload = 32 bytes.
    assert_eq!(out[0].msgs_sent, 1);
    assert_eq!(out[0].bytes_sent, 32);
    assert_eq!(out[0].bytes_to[1], 32);
    assert_eq!(out[1].msgs_recv, 1);
    assert_eq!(out[1].bytes_recv, 32);
    assert_eq!(out[0].barriers, 1);
}

#[test]
fn probe_and_test_report_availability() {
    let out = World::new(cfg(NetModel::zero())).run(2, |rank| {
        if rank.rank() == 0 {
            rank.send(1, 4, &1u8);
            rank.barrier();
            true
        } else {
            rank.barrier(); // ensure the message is queued
            let req = rank.irecv::<u8>(0, 4);
            let avail = req.test(rank) && rank.probe(Some(0), 4);
            let _ = req.wait(rank);
            avail
        }
    });
    assert!(out[1]);
}

#[test]
fn wire_struct_roundtrips_through_network() {
    #[derive(Debug, Clone, PartialEq)]
    struct ShadowUpdate {
        global_id: u32,
        data: i64,
    }
    impl Wire for ShadowUpdate {
        fn encode(&self, out: &mut Vec<u8>) {
            self.global_id.encode(out);
            self.data.encode(out);
        }
        fn decode(buf: &mut &[u8]) -> Result<Self, mpisim::WireError> {
            Ok(ShadowUpdate {
                global_id: u32::decode(buf)?,
                data: i64::decode(buf)?,
            })
        }
    }
    let msg = ShadowUpdate {
        global_id: 17,
        data: -5,
    };
    let sent = msg.clone();
    let out = World::new(cfg(NetModel::origin2000())).run(2, |rank| {
        if rank.rank() == 0 {
            rank.send(1, 9, &sent);
            None
        } else {
            Some(rank.recv::<ShadowUpdate>(0, 9))
        }
    });
    assert_eq!(out[1].as_ref().unwrap(), &msg);
}

#[test]
fn real_time_mode_advances_wall_clock() {
    let out = World::new(Config::real_time()).run(1, |rank| {
        let t0 = rank.wtime();
        rank.advance(0.01);
        rank.wtime() - t0
    });
    assert!(out[0] >= 0.009, "spun for {}s", out[0]);
}

#[test]
fn allgather_replicates_everywhere() {
    let out = World::new(cfg(NetModel::origin2000()))
        .run(5, |rank| rank.allgather(&(rank.rank() as u32 * 3)));
    for got in out {
        assert_eq!(got, vec![0, 3, 6, 9, 12]);
    }
}

#[test]
fn scan_computes_inclusive_prefixes() {
    let out = World::new(cfg(NetModel::origin2000()))
        .run(6, |rank| rank.scan(rank.rank() as u64 + 1, |a, b| a + b));
    assert_eq!(out, vec![1, 3, 6, 10, 15, 21]);
}

#[test]
fn sendrecv_exchanges_without_deadlock() {
    // Everyone sends right and receives from the left simultaneously —
    // the pattern that deadlocks naive blocking code.
    let n = 8;
    let out = World::new(cfg(NetModel::origin2000())).run(n, |rank| {
        let right = (rank.rank() + 1) % rank.size();
        let left = (rank.rank() + rank.size() - 1) % rank.size();
        rank.sendrecv(right, left, 3, &(rank.rank() as u64))
    });
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, ((i + n - 1) % n) as u64);
    }
}

#[test]
fn binomial_collectives_match_linear_semantics_at_odd_sizes() {
    for n in [1usize, 2, 3, 5, 7, 9, 13] {
        let out = World::new(cfg(NetModel::origin2000())).run(n, |rank| {
            let g = rank.gather(n - 1, &(rank.rank() as u32));
            let mut b = if rank.rank() == n / 2 { 7u32 } else { 0 };
            rank.bcast(n / 2, &mut b);
            (g, b)
        });
        assert_eq!(
            out[n - 1].0.as_ref().unwrap(),
            &(0..n as u32).collect::<Vec<_>>(),
            "gather at n={n}"
        );
        assert!(out.iter().all(|(_, b)| *b == 7), "bcast at n={n}");
    }
}
