//! Adversarial properties of the [`Wire`] codec.
//!
//! The reliable-delivery layer assumes the codec is *total* over damaged
//! input: whatever the fault injector does to a frame, `decode` must return
//! a [`WireError`] or a value — never panic, never loop, and never accept
//! bytes that are not the canonical encoding of what it returns. These
//! tests drive every wire type through
//!
//! * exact round-trips,
//! * truncation at **every** byte boundary (length-prefixed and fixed-width
//!   encodings are self-delimiting, so every strict prefix must error), and
//! * seeded single-byte mutations at every position: a successful decode of
//!   damaged bytes must re-encode to exactly those bytes (the encoding is
//!   canonical), and the frame checksum must always distinguish the damaged
//!   frame from the pristine one.

use ic2_rng::mix64;
use mpisim::{frame_checksum, Wire};

/// Extra seeded random (position, delta) mutation trials per value, on top
/// of the exhaustive one-mutation-per-position sweep.
const RANDOM_TRIALS: u64 = 64;

fn assault<T: Wire + PartialEq + std::fmt::Debug>(label: &str, v: &T, seed: u64) {
    let bytes = v.to_bytes();

    // Round-trip: decode returns exactly the encoded value.
    let back = T::from_bytes(&bytes)
        .unwrap_or_else(|e| panic!("{label}: pristine encoding failed to decode: {e}"));
    assert_eq!(&back, v, "{label}: round-trip changed the value");

    // Truncation at every byte boundary must produce a WireError. No panic,
    // and no strict prefix may decode as a complete value.
    for keep in 0..bytes.len() {
        if let Ok(got) = T::from_bytes(&bytes[..keep]) {
            panic!(
                "{label}: truncation to {keep}/{} bytes decoded as {got:?}",
                bytes.len()
            );
        }
    }

    if bytes.is_empty() {
        return; // zero-width encodings have nothing to mutate
    }

    // One seeded mutation at every byte position, plus extra random trials.
    let positions = (0..bytes.len() as u64).map(|p| (p, mix64(seed ^ mix64(p))));
    let randoms = (0..RANDOM_TRIALS).map(|t| {
        let h = mix64(seed ^ mix64(t ^ 0x9e37_79b9_7f4a_7c15));
        (h % bytes.len() as u64, mix64(h))
    });
    for (pos, h) in positions.chain(randoms) {
        let pos = pos as usize;
        let delta = (h >> 32) as u8 | 1; // non-zero, so the byte changes
        let mut mutated = bytes.clone();
        mutated[pos] ^= delta;

        // The decoder may reject the damage or parse it as some other
        // value — but a value it returns must be one whose canonical
        // encoding is exactly the damaged buffer. Anything else means the
        // codec invented or dropped bytes.
        if let Ok(got) = T::from_bytes(&mutated) {
            assert_eq!(
                got.to_bytes(),
                mutated,
                "{label}: mutation at byte {pos} decoded as {got:?}, which \
                 does not re-encode to the damaged bytes"
            );
        }

        // Whatever the decoder thinks, the frame checksum always tells the
        // damaged frame apart from the pristine one.
        assert_ne!(
            frame_checksum(seed, 0, 7, pos as u64, &bytes),
            frame_checksum(seed, 0, 7, pos as u64, &mutated),
            "{label}: checksum collision after mutating byte {pos}"
        );
    }
}

#[test]
fn unsigned_integers_survive_assault() {
    assault("u8", &0u8, 1);
    assault("u8", &255u8, 2);
    assault("u16", &0xbeefu16, 3);
    assault("u32", &0xdead_beefu32, 4);
    assault("u64", &u64::MAX, 5);
    assault("u64", &0u64, 6);
    assault("usize", &usize::MAX, 7);
    assault("usize", &42usize, 8);
}

#[test]
fn signed_integers_survive_assault() {
    assault("i8", &i8::MIN, 9);
    assault("i8", &-1i8, 10);
    assault("i16", &-12345i16, 11);
    assault("i32", &i32::MIN, 12);
    assault("i64", &i64::MIN, 13);
    assault("i64", &i64::MAX, 14);
}

#[test]
fn floats_survive_assault() {
    assault("f32", &3.5f32, 15);
    assault("f32", &f32::NEG_INFINITY, 16);
    assault("f32", &-0.0f32, 17);
    assault("f64", &-0.125f64, 18);
    assault("f64", &f64::INFINITY, 19);
    assault("f64", &f64::MIN_POSITIVE, 20);
}

#[test]
fn bool_and_unit_survive_assault() {
    assault("bool", &true, 21);
    assault("bool", &false, 22);
    assault("unit", &(), 23);
}

#[test]
fn strings_survive_assault() {
    assault("String", &String::new(), 24);
    assault("String", &"hello world".to_string(), 25);
    assault("String", &"snowman \u{2603} and friends".to_string(), 26);
    // A long string gives the mutation sweep many interior positions where
    // damage lands inside multi-byte utf-8 sequences.
    assault("String", &"\u{1f680}".repeat(17), 27);
}

#[test]
fn vecs_survive_assault() {
    assault("Vec<u8>", &Vec::<u8>::new(), 28);
    assault("Vec<u8>", &(0u8..100).collect::<Vec<_>>(), 29);
    assault("Vec<u32>", &vec![1u32, 2, 3, 0xffff_ffff], 30);
    assault("Vec<f64>", &vec![1.5f64, -2.25, 0.0], 31);
    assault("Vec<()>", &vec![(); 9], 32);
    assault(
        "Vec<Vec<u16>>",
        &vec![vec![1u16, 2], vec![], vec![3, 4, 5]],
        33,
    );
    assault(
        "Vec<(u32, Vec<u8>)>",
        &vec![(1u32, vec![2u8, 3]), (4, vec![])],
        34,
    );
}

#[test]
fn options_survive_assault() {
    assault("Option<u8>", &Option::<u8>::None, 35);
    assault("Option<u8>", &Some(200u8), 36);
    assault("Option<String>", &Some("inner".to_string()), 37);
    assault("Option<Vec<u32>>", &Some(vec![7u32, 8]), 38);
    assault("Option<Option<bool>>", &Some(Some(true)), 39);
    assault("Option<Option<bool>>", &Some(None::<bool>), 40);
}

#[test]
fn tuples_survive_assault() {
    assault("(u32,)", &(5u32,), 41);
    assault("(u32, f64)", &(1u32, 2.5f64), 42);
    assault("(u32, f64, bool)", &(1u32, 2.5f64, true), 43);
    assault("(u8, u16, u32, u64)", &(1u8, 2u16, 3u32, 4u64), 44);
    assault(
        "(u8, i8, String, Vec<u8>, bool)",
        &(9u8, -9i8, "mid".to_string(), vec![1u8, 2], false),
        45,
    );
}

#[test]
fn arrays_survive_assault() {
    assault("[u16; 4]", &[1u16, 2, 3, 4], 46);
    assault("[f64; 3]", &[0.5f64, -1.5, 2.5], 47);
    assault("[Vec<u8>; 2]", &[vec![1u8], vec![2u8, 3]], 48);
}

#[test]
fn application_shaped_payloads_survive_assault() {
    // The shapes the platform actually ships: shadow-value batches,
    // checkpoint tables, adoption packages, gather chunks.
    assault(
        "shadow batch Vec<(u32, f64)>",
        &(0u32..40).map(|i| (i, i as f64 * 0.25)).collect::<Vec<_>>(),
        49,
    );
    assault(
        "checkpoint table Vec<(u32, Vec<f64>)>",
        &vec![(0u32, vec![1.0f64, 2.0]), (3, vec![]), (7, vec![-0.5])],
        50,
    );
    assault(
        "verdict-ish (u64, Vec<bool>, Option<f64>)",
        &(3u64, vec![true, false, true, false], Some(1.25f64)),
        51,
    );
}

/// The length prefix is the most dangerous byte range to damage: a mutated
/// length must be rejected (or consume exactly the announced bytes), never
/// over-read, and never allocate unbounded memory. Exercise it directly
/// with hostile lengths rather than waiting for the random sweep.
#[test]
fn hostile_length_prefixes_error() {
    for len in [
        4u64,
        1 << 20,
        u64::MAX,
        u64::MAX / 2,
        (1u64 << 32) + 1,
        0x00ff_ffff_ffff_ffff,
    ] {
        let mut buf = len.to_bytes();
        buf.extend_from_slice(&[1, 2, 3]); // far fewer elements than announced
        assert!(Vec::<u8>::from_bytes(&buf).is_err(), "len {len}");
        assert!(Vec::<u64>::from_bytes(&buf).is_err(), "len {len}");
        assert!(String::from_bytes(&buf).is_err(), "len {len}");
        // Zero-width elements consume no input, so the decoder accepts any
        // modest length; only lengths beyond its materialisation cap are
        // hostile (and must error instead of spinning for 2^64 rounds).
        if len > 1 << 16 {
            assert!(Vec::<()>::from_bytes(&len.to_bytes()).is_err(), "len {len}");
            assert!(
                Vec::<[(); 8]>::from_bytes(&len.to_bytes()).is_err(),
                "len {len}"
            );
        }
    }
}

/// Decoding is a pure function of the bytes: damaged frames fail (or parse)
/// identically on every call, so retransmit-and-reverify converges.
#[test]
fn decode_is_deterministic_over_damage() {
    let v: Vec<(u32, f64)> = (0..16).map(|i| (i, f64::from(i) * 1.5)).collect();
    let bytes = v.to_bytes();
    for pos in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[pos] ^= 0x40;
        // Compare through re-encoding: damage can produce NaNs, which
        // would defeat a direct value comparison.
        let a = Vec::<(u32, f64)>::from_bytes(&mutated).map(|v| v.to_bytes());
        let b = Vec::<(u32, f64)>::from_bytes(&mutated).map(|v| v.to_bytes());
        assert_eq!(a, b, "pos {pos}");
    }
}
