//! Disk-fault chaos: the out-of-core pager against every class of
//! injected storage failure — transient I/O errors, torn writes, page
//! rot, disk-full rejections — alone and composed with crashes, bounded
//! mailboxes, and delta exchange.
//!
//! The contract is the platform's usual one, extended below RAM: every
//! recoverable run converges byte-identical to the sequential oracle
//! with bit-identical same-seed `total_time`, and a run whose every page
//! copy is destroyed fails with the typed `UnrecoverableState` — never a
//! wrong answer.

use ic2mpi::prelude::*;
use ic2mpi::seq;
use mpisim::{DiskFault, FaultPlan, NetModel};
use std::time::Duration;

fn world(plan: FaultPlan) -> mpisim::Config {
    mpisim::Config::virtual_time(NetModel::origin2000())
        .with_watchdog(Duration::from_secs(30))
        .with_faults(plan)
}

fn clean_world() -> mpisim::Config {
    mpisim::Config::virtual_time(NetModel::origin2000()).with_watchdog(Duration::from_secs(30))
}

/// Fault-plan seed, overridable via `CHAOS_SEED` (see chaos.rs).
fn chaos_seed(default: u64) -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The same disk fault on every rank.
fn disk_fault_everyone(mut plan: FaultPlan, nprocs: usize, kind: DiskFault, p: f64) -> FaultPlan {
    for r in 0..nprocs {
        plan = plan.with_disk_fault(r, kind, p);
    }
    plan
}

#[test]
fn transient_errors_are_retried_with_backoff_and_stay_exact() {
    // Every rank's disk fails three in ten operations transiently. The
    // bounded-backoff retry loop must absorb all of it — same answer,
    // deterministic retry tally, bit-identical virtual time (the backoff
    // is charged to the clock, not hidden).
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let nprocs = 8;
    let iterations = 12u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let plan = || {
        disk_fault_everyone(
            FaultPlan::new(chaos_seed(101)),
            nprocs,
            DiskFault::TransientError,
            0.3,
        )
    };
    let cfg = |pl| {
        RunConfig::new(nprocs, iterations)
            .with_checkpointing(3)
            .with_paging(6, EvictionPolicy::Sieve)
            .with_world(world(pl))
            .with_validation()
    };
    let a = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, oracle, "transient errors must be invisible");
    assert!(a.disk_retries > 0, "retries must actually happen: {a:?}");
    assert!(a.faults.disk_transient_errors > 0, "{a:?}");
    let b = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.disk_retries, b.disk_retries);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
}

#[test]
fn torn_writes_are_caught_by_read_back_before_the_pointer_flip() {
    // Acknowledged-but-torn writes: the shadow-paging commit's read-back
    // verification must catch every one before the active-slot pointer
    // flips, recommit under a fresh version, and stay exact.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let nprocs = 8;
    let iterations = 12u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let plan = || {
        disk_fault_everyone(
            FaultPlan::new(chaos_seed(103)),
            nprocs,
            DiskFault::TornWrite,
            0.2,
        )
    };
    let cfg = |pl| {
        RunConfig::new(nprocs, iterations)
            .with_checkpointing(3)
            .with_paging(6, EvictionPolicy::Clock)
            .with_world(world(pl))
            .with_validation()
    };
    let a = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, oracle, "torn writes must never surface");
    assert!(
        a.torn_writes_detected > 0,
        "read-back must catch torn writes: {a:?}"
    );
    assert!(a.disk_retries > 0, "a caught tear forces a recommit: {a:?}");
    let b = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.torn_writes_detected, b.torn_writes_detected);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
}

#[test]
fn page_rot_escalates_shadow_copy_then_rollback_and_stays_exact() {
    // At-rest rot on stored page images (every read of a healthy copy
    // rolls a fresh 1% decay decision, so rot strikes in the hundreds
    // over the run's read volume). The repair ladder: a rotten primary
    // is served from its verified shadow copy (pages_recovered); a page
    // whose every copy rots forces a rollback to the last verified
    // checkpoint and a replay with fresh fault decisions. Either way the
    // answer is exact and the schedule deterministic. (Much past this
    // rate the consecutive-failure limit legitimately deems the disk
    // unrecoverable — see the typed-failure test below.)
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let nprocs = 8;
    let iterations = 12u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let plan = || {
        disk_fault_everyone(
            FaultPlan::new(chaos_seed(107)),
            nprocs,
            DiskFault::ReadRot,
            0.01,
        )
    };
    let cfg = |pl| {
        RunConfig::new(nprocs, iterations)
            .with_checkpointing(3)
            .with_paging(6, EvictionPolicy::Sieve)
            .with_world(world(pl))
            .with_validation()
    };
    let a = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, oracle, "page rot must be repaired exactly");
    assert!(
        a.faults.disk_read_rots > 0,
        "rot must actually strike: {a:?}"
    );
    assert!(
        a.pages_recovered > 0 || a.rollbacks > 0,
        "the repair ladder must engage: {a:?}"
    );
    let b = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.pages_recovered, b.pages_recovered);
    assert_eq!(a.rollbacks, b.rollbacks);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
}

#[test]
fn full_disk_rejections_are_absorbed_by_the_retry_loop() {
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let nprocs = 8;
    let iterations = 12u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let plan = || {
        disk_fault_everyone(
            FaultPlan::new(chaos_seed(109)),
            nprocs,
            DiskFault::Full,
            0.25,
        )
    };
    let cfg = |pl| {
        RunConfig::new(nprocs, iterations)
            .with_checkpointing(3)
            .with_paging(6, EvictionPolicy::Lru)
            .with_world(world(pl))
            .with_validation()
    };
    let a = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, oracle, "full-disk rejections must be retried");
    assert!(a.faults.disk_full_rejections > 0, "{a:?}");
    assert!(a.disk_retries > 0, "{a:?}");
    let b = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
}

#[test]
fn page_rot_composes_with_crash_capacity_2_and_delta_exchange() {
    // The composition test: an uncooperative crash while every survivor's
    // disk rots, under the tightest legal mailbox (capacity 2) with delta
    // shadow exchange. Rollback restores from the buddy mirror (itself an
    // incremental page-diff image), the pager replays against a purged
    // disk with fresh fault decisions, and the result is exact — twice,
    // bit-identically.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::shifting();
    let nprocs = 8;
    let iterations = 16u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let clean_total = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(nprocs, iterations)
            .with_paging(6, EvictionPolicy::Sieve)
            .with_checkpointing(4)
            .with_delta_exchange()
            .with_world(clean_world()),
    )
    .total_time;

    let plan = || {
        disk_fault_everyone(
            FaultPlan::new(chaos_seed(113)),
            nprocs,
            DiskFault::ReadRot,
            0.01,
        )
        .with_crash(3, clean_total * 0.55)
    };
    let cfg = |pl| {
        RunConfig::new(nprocs, iterations)
            .with_checkpointing(4)
            .with_paging(6, EvictionPolicy::Sieve)
            .with_replication(2)
            .with_delta_exchange()
            .with_world(
                mpisim::Config::virtual_time(NetModel::origin2000())
                    .with_watchdog(Duration::from_secs(30))
                    .with_mailbox_capacity(2)
                    .with_faults(pl),
            )
            .with_validation()
    };
    let a = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, oracle, "crash + rot + backpressure: exact");
    assert!(a.rollbacks >= 1, "the crash must roll back: {a:?}");
    assert!(a.ranks_died.contains(&3), "{:?}", a.ranks_died);
    assert!(!a.final_owner.contains(&3));
    assert!(a.page_faults > 0, "{a:?}");
    assert!(a.delta_entries_skipped > 0, "delta suppression must engage");
    let b = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.rollbacks, b.rollbacks);
    assert_eq!(a.page_faults, b.page_faults);
    assert_eq!(a.pages_recovered, b.pages_recovered);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
}

#[test]
fn run_fails_typed_when_every_page_copy_is_rotten() {
    // Rot at probability 1 on every rank: no read — primary, shadow, or
    // read-back verification — can ever succeed, so no page that leaves
    // RAM can come back. The escalation ladder must exhaust its strikes
    // and fail with the typed UnrecoverableState — deterministically,
    // twice — instead of computing with holes in the graph.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let nprocs = 8;
    let iterations = 12u32;
    let plan = || {
        disk_fault_everyone(
            FaultPlan::new(chaos_seed(127)),
            nprocs,
            DiskFault::ReadRot,
            1.0,
        )
    };
    let cfg = |pl| {
        RunConfig::new(nprocs, iterations)
            .with_checkpointing(3)
            .with_paging(6, EvictionPolicy::Clock)
            .with_world(world(pl))
            .with_validation()
    };
    let errs: Vec<PlatformError> = (0..2)
        .map(|_| {
            try_run(
                &graph,
                &program,
                &Metis::default(),
                || NoBalancer,
                &cfg(plan()),
            )
            .expect_err("no page can survive a round trip through this disk")
        })
        .collect();
    for e in &errs {
        assert!(
            matches!(e, PlatformError::UnrecoverableState { .. }),
            "expected UnrecoverableState, got {e:?}"
        );
    }
}

/// The ISSUE acceptance scenario at full scale: a 1M-node graph on 16
/// ranks with a resident budget far below the partition size, under
/// every disk fault class at once. Run with `--ignored --release`.
#[test]
#[ignore = "multi-minute acceptance run; exercised by the out_of_core bench in CI"]
fn million_node_out_of_core_run_is_exact_under_disk_faults() {
    let graph = ic2_graph::generators::hex_grid_n(1_000_000);
    let program = AvgProgram::fine();
    let nprocs = 16;
    let iterations = 3u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    // Rates are scaled to the read volume: every fault probability is
    // per-operation, and a rank here performs ~60k page reads per
    // iteration, so the 64-node suite's rot rate (0.01) would latch
    // hundreds of rotten copies per round and legitimately exhaust the
    // consecutive-damage strikes. 2e-5 still rots dozens of copies over
    // the run (shadow rescue engages) without destroying both copies of
    // a page every round.
    let plan = || {
        let mut pl = FaultPlan::new(chaos_seed(131));
        for r in 0..nprocs {
            pl = pl
                .with_disk_fault(r, DiskFault::TransientError, 0.02)
                .with_disk_fault(r, DiskFault::TornWrite, 0.01)
                .with_disk_fault(r, DiskFault::ReadRot, 0.000_02);
        }
        pl
    };
    // 512 hash buckets per rank, 64 resident: ~1/8 of the partition in
    // RAM at any time. Metis at full scale: FM refinement maintains an
    // incremental gain heap, so the multilevel pipeline is n log n end to
    // end and the real partitioner handles 10^6 nodes directly (the old
    // full-rescan refinement was quadratic per pass and forced a RowBand
    // workaround here).
    let cfg = |pl| {
        RunConfig::new(nprocs, iterations)
            .with_hash_buckets(512)
            .with_checkpointing(2)
            .with_paging(64, EvictionPolicy::Sieve)
            .with_world(world(pl))
    };
    let a = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(
        a.final_data, oracle,
        "1M-node out-of-core run must be exact"
    );
    assert!(a.page_faults > 0 && a.pages_evicted > 0);
    assert!(a.disk_retries > 0);
    let b = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
}
