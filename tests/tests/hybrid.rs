//! Hybrid BSP/asynchronous execution ([`RunConfig::with_hybrid`]).
//!
//! The contract under test: `ExecutionPolicy::Hybrid { inner_k }` runs up
//! to `inner_k` *inner* iterations — interior nodes only, no barriers, no
//! shadow exchange, no control exchange — between global rounds, and a
//! global round first replays the boundary passes the elided rounds
//! skipped. Every node is therefore invoked once per (iteration, phase)
//! exactly as under BSP, so for the autonomous churn workload below the
//! final state must be *byte-identical* to both plain BSP and the
//! sequential oracle, while the elided collectives make the virtual clock
//! read strictly less. The elision cadence is a pure function of the
//! iteration number and the run configuration — never of runtime state —
//! which is what lets every fault-tolerance layer (rollback, park/rejoin,
//! delta, paging, audits) compose with it unchanged.

use ic2mpi::prelude::*;
use ic2mpi::seq;
use mpisim::{FaultPlan, NetModel};
use std::time::Duration;

fn world(plan: FaultPlan) -> mpisim::Config {
    mpisim::Config::virtual_time(NetModel::origin2000())
        .with_watchdog(Duration::from_secs(30))
        .with_faults(plan)
}

fn clean_world() -> mpisim::Config {
    mpisim::Config::virtual_time(NetModel::origin2000()).with_watchdog(Duration::from_secs(30))
}

/// Fault-plan seed, overridable via `CHAOS_SEED` (see chaos.rs).
fn chaos_seed(default: u64) -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The delta-experiment churn workload (see `ic2-bench`), restated here:
/// a deterministic hash picks `churn_pct`% of nodes to increment their
/// value every iteration while the rest hold. The node function reads only
/// its own value, so per-node invocation counts fully determine the final
/// state — the sharpest possible probe for elision bookkeeping errors
/// (every missed or doubled inner/catch-up pass shifts a counter).
#[derive(Debug, Clone, Copy)]
struct ChurnProgram {
    churn_pct: u64,
}

impl ChurnProgram {
    fn is_churner(&self, node: ic2_graph::NodeId) -> bool {
        let mut z = node as u64 ^ 0x9e37_79b9_7f4a_7c15;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) % 100 < self.churn_pct
    }
}

impl NodeProgram for ChurnProgram {
    type Data = i64;
    fn init(&self, node: ic2_graph::NodeId, _graph: &ic2_graph::Graph) -> i64 {
        node as i64 + 1
    }
    fn compute(
        &self,
        node: ic2_graph::NodeId,
        own: &i64,
        _neighbors: &[NeighborData<'_, i64>],
        _ctx: &ComputeCtx,
    ) -> i64 {
        if self.is_churner(node) {
            *own + 1
        } else {
            *own
        }
    }
}

/// Mirror of the driver's pure elision cadence for configurations with no
/// balancing: iteration `i` is a global round iff it closes an inner block
/// (`i % (inner_k + 1) == 0`), is the final iteration, or lands on a
/// checkpoint or audit cadence (which need their collectives).
fn expected_inner_iterations(
    iterations: u32,
    inner_k: u32,
    checkpoint_every: Option<u32>,
    audit_every: Option<u32>,
) -> u32 {
    (1..=iterations)
        .filter(|&i| {
            let forced = i % (inner_k + 1) == 0
                || i == iterations
                || checkpoint_every.is_some_and(|k| i % k == 0)
                || audit_every.is_some_and(|a| i % a == 0);
            !forced
        })
        .count() as u32
}

#[test]
fn hybrid_is_byte_identical_to_bsp_and_oracle_across_churn() {
    let graph = ic2_graph::generators::hex_grid_n(96);
    let nprocs = 8;
    let iterations = 24u32;
    for churn in [0u64, 10, 100] {
        let program = ChurnProgram { churn_pct: churn };
        let oracle = seq::run_sequential(&graph, &program, iterations);
        let run_cfg = |cfg: RunConfig| {
            run(
                &graph,
                &program,
                &Metis::default(),
                || NoBalancer,
                &cfg.with_world(clean_world()).with_validation(),
            )
        };
        let bsp = run_cfg(RunConfig::new(nprocs, iterations));
        assert_eq!(bsp.final_data, oracle, "churn {churn}: BSP must be exact");
        assert_eq!(bsp.inner_iterations, 0, "BSP never elides");
        assert_eq!(bsp.barriers_elided, 0);
        for inner_k in [1u32, 3] {
            let a = run_cfg(RunConfig::new(nprocs, iterations).with_hybrid(inner_k));
            assert_eq!(
                a.final_data, oracle,
                "churn {churn} k={inner_k}: hybrid must stay exact"
            );
            assert_eq!(a.final_owner, bsp.final_owner);
            assert!(
                a.inner_iterations > 0,
                "churn {churn} k={inner_k}: elision must engage"
            );
            assert_eq!(
                a.barriers_elided, a.inner_iterations as u64,
                "one elided exchange per inner iteration per phase"
            );
            assert!(
                a.total_time < bsp.total_time,
                "churn {churn} k={inner_k}: eliding collectives must save \
                 virtual time ({} vs BSP {})",
                a.total_time,
                bsp.total_time
            );
            let b = run_cfg(RunConfig::new(nprocs, iterations).with_hybrid(inner_k));
            assert_eq!(a.final_data, b.final_data);
            assert_eq!(
                a.total_time.to_bits(),
                b.total_time.to_bits(),
                "churn {churn} k={inner_k}: same seed, bit-identical time"
            );
        }
    }
}

#[test]
fn elision_cadence_is_a_pure_function_of_the_schedule() {
    // The reported counters must match the closed-form cadence exactly:
    // no hidden runtime dependence (convergence, load, fault state) may
    // influence which rounds elide.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = ChurnProgram { churn_pct: 10 };
    let iterations = 20u32;
    for inner_k in [1u32, 2, 3, 7] {
        let clean = run(
            &graph,
            &program,
            &Metis::default(),
            || NoBalancer,
            &RunConfig::new(8, iterations)
                .with_hybrid(inner_k)
                .with_world(clean_world()),
        );
        let want = expected_inner_iterations(iterations, inner_k, None, None);
        assert_eq!(
            clean.inner_iterations, want,
            "k={inner_k}: clean cadence must match the closed form"
        );
        assert_eq!(clean.barriers_elided, want as u64);

        // The audit config drives the checkpoint/recovery execution plane
        // (a faultless `with_checkpointing` alone stays on the plain SPMD
        // path and takes no snapshots), where both the checkpoint and the
        // audit cadence force their rounds global.
        let checkpointed = run(
            &graph,
            &program,
            &Metis::default(),
            || NoBalancer,
            &RunConfig::new(8, iterations)
                .with_hybrid(inner_k)
                .with_checkpointing(4)
                .with_state_audit(6)
                .with_world(clean_world()),
        );
        let want = expected_inner_iterations(iterations, inner_k, Some(4), Some(6));
        assert_eq!(
            checkpointed.inner_iterations, want,
            "k={inner_k}: checkpoint and audit cadences force their rounds global"
        );
        assert_eq!(checkpointed.barriers_elided, want as u64);
    }
}

#[test]
fn hybrid_composes_with_crash_rollback() {
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = ChurnProgram { churn_pct: 10 };
    let nprocs = 8;
    let iterations = 16u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let clean_total = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(nprocs, iterations)
            .with_hybrid(3)
            .with_world(clean_world()),
    )
    .total_time;
    let cfg = || {
        RunConfig::new(nprocs, iterations)
            .with_hybrid(3)
            .with_checkpointing(4)
            .with_world(world(
                FaultPlan::new(chaos_seed(47)).with_crash(3, clean_total * 0.5),
            ))
            .with_validation()
    };
    let a = run(&graph, &program, &Metis::default(), || NoBalancer, &cfg());
    assert_eq!(a.final_data, oracle, "rollback + replay must stay exact");
    assert!(a.rollbacks >= 1, "the crash must actually trigger recovery");
    assert!(a.ranks_died.contains(&3));
    // Replayed inner rounds count again, so the counter can only exceed
    // the single-pass cadence.
    assert!(
        a.inner_iterations >= expected_inner_iterations(iterations, 3, Some(4), None),
        "replay re-elides the same rounds: {}",
        a.inner_iterations
    );
    assert_eq!(a.barriers_elided, a.inner_iterations as u64);
    let b = run(&graph, &program, &Metis::default(), || NoBalancer, &cfg());
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.inner_iterations, b.inner_iterations);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
}

#[test]
fn hybrid_composes_with_partition_park_and_rejoin() {
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = ChurnProgram { churn_pct: 10 };
    let nprocs = 8;
    let iterations = 20u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let clean = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(nprocs, iterations)
            .with_hybrid(3)
            .with_world(clean_world()),
    );
    let groups = vec![vec![0, 1, 2, 3, 4, 5], vec![6, 7]];
    let plan = || {
        FaultPlan::new(chaos_seed(43))
            .with_partition(
                groups.clone(),
                clean.total_time * 0.4,
                clean.total_time * 0.75,
            )
            .with_detect_timeout(5e-4)
    };
    let cfg = |pl| {
        RunConfig::new(nprocs, iterations)
            .with_hybrid(3)
            .with_checkpointing(3)
            .with_partition_tolerance()
            .with_world(world(pl))
            .with_validation()
    };
    let a = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, oracle, "rejoin + replay must stay exact");
    assert!(a.rejoins >= 1, "the minority must rejoin");
    assert!(a.degraded_iterations > 0);
    assert!(
        a.inner_iterations > 0,
        "healthy stretches must still elide: {a:?}"
    );
    assert_eq!(a.barriers_elided, a.inner_iterations as u64);
    assert!(
        a.total_time > clean.total_time,
        "degradation, parking and replay must cost virtual time"
    );
    let b = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
}

#[test]
fn hybrid_composes_with_delta_exchange() {
    // Delta suppression keys off shadow staleness; a global round that
    // followed elided rounds forces a full repack only when the catch-up
    // actually changed a boundary value. With 10% churn the holders stay
    // clean, so skipping must still engage under hybrid.
    let graph = ic2_graph::generators::hex_grid_n(96);
    let program = ChurnProgram { churn_pct: 10 };
    let nprocs = 8;
    let iterations = 24u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let cfg = || {
        RunConfig::new(nprocs, iterations)
            .with_hybrid(3)
            .with_delta_exchange()
            .with_world(clean_world())
            .with_validation()
    };
    let a = run(&graph, &program, &Metis::default(), || NoBalancer, &cfg());
    assert_eq!(a.final_data, oracle, "delta + hybrid must stay exact");
    assert!(a.inner_iterations > 0);
    assert!(
        a.delta_entries_skipped > 0,
        "clean holders must still be skipped under hybrid: {a:?}"
    );
    let b = run(&graph, &program, &Metis::default(), || NoBalancer, &cfg());
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.delta_entries_skipped, b.delta_entries_skipped);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
}

#[test]
fn hybrid_composes_with_out_of_core_paging() {
    // A 4-page budget against 64 buckets per rank keeps the pager under
    // constant pressure; inner rounds fault interior pages in and out
    // without any exchange, and the answer must not move.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = ChurnProgram { churn_pct: 10 };
    let nprocs = 8;
    let iterations = 12u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let cfg = || {
        RunConfig::new(nprocs, iterations)
            .with_hybrid(3)
            .with_checkpointing(4)
            .with_paging(4, EvictionPolicy::Sieve)
            .with_world(clean_world())
            .with_validation()
    };
    let a = run(&graph, &program, &Metis::default(), || NoBalancer, &cfg());
    assert_eq!(a.final_data, oracle, "paged hybrid run must stay exact");
    assert!(a.page_faults > 0 && a.pages_evicted > 0, "budget must bind");
    assert!(a.inner_iterations > 0);
    let b = run(&graph, &program, &Metis::default(), || NoBalancer, &cfg());
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.page_faults, b.page_faults);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
}

#[test]
fn hybrid_composes_with_memory_rot_and_audits() {
    // At-rest corruption sweeps run on every round (inner included, with a
    // monotonic epoch), while audits and their repairs only fire at global
    // rounds. An audit cadence of 2 forces every even round global, so
    // elision still engages on the odd rounds.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = ChurnProgram { churn_pct: 10 };
    let nprocs = 8;
    let iterations = 12u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let plan = || {
        let mut pl = FaultPlan::new(chaos_seed(71));
        for r in 0..nprocs {
            pl = pl.with_memory_corrupt(r, 0.01);
        }
        pl
    };
    let cfg = |pl| {
        RunConfig::new(nprocs, iterations)
            .with_hybrid(3)
            .with_checkpointing(3)
            .with_state_audit(2)
            .with_replication(4)
            .with_world(world(pl))
            .with_validation()
    };
    let a = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, oracle, "audited hybrid run must stay exact");
    assert!(a.memory_corruptions > 0, "bits must actually flip: {a:?}");
    assert!(a.repairs > 0, "detection must trigger repair: {a:?}");
    assert!(
        a.inner_iterations > 0,
        "odd rounds stay elidable under audit_every = 2: {a:?}"
    );
    let b = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
}

#[test]
fn zero_inner_k_is_rejected_with_a_typed_error() {
    let graph = ic2_graph::generators::hex_grid_n(16);
    let err = try_run(
        &graph,
        &AvgProgram::fine(),
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(4, 4).with_hybrid(0),
    )
    .unwrap_err();
    assert!(
        matches!(err, PlatformError::ZeroInnerIterations),
        "got {err:?}"
    );
}
