//! Delta shadow exchange: oracle exactness, traffic accounting, and
//! determinism under the full chaos matrix.
//!
//! Delta mode ([`RunConfig::with_delta_exchange`]) suppresses shadow
//! updates for *clean* boundary nodes — nodes whose newly computed value
//! equals their current one — relying on receivers retaining the last
//! value they saw. These tests pin the three load-bearing properties:
//!
//! 1. **Oracle exactness.** Delta on and delta off compute byte-identical
//!    answers (equal to the sequential oracle) on clean runs and under
//!    corruption, drops, kill + evacuation, crash + rollback, and
//!    capacity-2 backpressure. Migration, evacuation, and rollback all
//!    force a full resync, so retained shadows can never go stale.
//! 2. **Traffic accounting.** `sent + skipped` equals the full-exchange
//!    traffic (nothing vanishes), clean nodes are provably never packed,
//!    and global quiescence is detected and reported.
//! 3. **Determinism.** Same-seed delta runs are bit-identical in virtual
//!    time and render byte-identical traces, `delta_skipped` instants
//!    included.

use ic2_graph::NodeId;
use ic2mpi::prelude::*;
use ic2mpi::seq;
use ic2mpi::{chrome_trace_json, timeline_json, TraceEvent};
use mpisim::{FaultPlan, NetModel};
use std::time::Duration;

fn world(plan: FaultPlan) -> mpisim::Config {
    mpisim::Config::virtual_time(NetModel::origin2000())
        .with_watchdog(Duration::from_secs(30))
        .with_faults(plan)
}

fn clean_world() -> mpisim::Config {
    mpisim::Config::virtual_time(NetModel::origin2000()).with_watchdog(Duration::from_secs(30))
}

/// Fault-plan seed, overridable via `CHAOS_SEED` (same contract as
/// `chaos.rs`: every assertion is seed-agnostic).
fn chaos_seed(default: u64) -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn wire_bytes<D>(report: &RunReport<D>) -> u64 {
    report.comm.iter().map(|c| c.bytes_sent).sum()
}

/// Min-propagation: each node takes the minimum of itself and its
/// neighbours. Converges to the global minimum in diameter-many
/// iterations and is *exactly* quiescent afterwards — the ideal workload
/// for delta suppression and quiescence detection.
#[derive(Debug, Clone, Copy)]
struct MinProgram;

impl NodeProgram for MinProgram {
    type Data = i64;
    fn init(&self, node: NodeId, _graph: &Graph) -> i64 {
        node as i64 + 1
    }
    fn compute(
        &self,
        _node: NodeId,
        own: &i64,
        neighbors: &[NeighborData<'_, i64>],
        _ctx: &ComputeCtx,
    ) -> i64 {
        neighbors.iter().map(|n| *n.data).fold(*own, i64::min)
    }
}

/// A program whose nodes never change after initialization: every node is
/// clean in every iteration, so delta mode must suppress *all* shadow
/// traffic beyond the initial full sync.
#[derive(Debug, Clone, Copy)]
struct StaticProgram;

impl NodeProgram for StaticProgram {
    type Data = i64;
    fn init(&self, node: NodeId, _graph: &Graph) -> i64 {
        node as i64 * 3 + 1
    }
    fn compute(
        &self,
        _node: NodeId,
        own: &i64,
        _neighbors: &[NeighborData<'_, i64>],
        _ctx: &ComputeCtx,
    ) -> i64 {
        *own
    }
}

#[test]
fn delta_is_oracle_exact_and_cuts_traffic_on_a_converging_run() {
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = MinProgram;
    const ITERS: u32 = 30;
    let oracle = seq::run_sequential(&graph, &program, ITERS);
    let cfg = RunConfig::new(8, ITERS).with_world(clean_world());
    let off = run(&graph, &program, &Metis::default(), || NoBalancer, &cfg);
    let on = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg.clone().with_delta_exchange(),
    );

    assert_eq!(off.final_data, oracle);
    assert_eq!(on.final_data, oracle, "delta mode must stay oracle-exact");

    // Conservation: every shadow entry the full exchange sends is either
    // sent or deliberately skipped by delta — nothing vanishes. (Holds
    // exactly because nothing migrates in this run.)
    assert_eq!(off.delta_entries_skipped, 0);
    assert!(
        on.delta_entries_skipped > 0,
        "convergence must skip entries"
    );
    assert_eq!(
        on.delta_entries_sent + on.delta_entries_skipped,
        off.delta_entries_sent,
        "delta must account for exactly the full-exchange traffic"
    );

    // The point of the exercise: fewer bytes on the wire, less virtual
    // time (skipped nodes are not packed, smaller buffers transfer
    // faster), and quiescence after convergence is visible globally.
    assert!(
        wire_bytes(&on) < wire_bytes(&off),
        "delta must cut bytes on the wire: {} vs {}",
        wire_bytes(&on),
        wire_bytes(&off)
    );
    assert!(
        on.total_time < off.total_time,
        "delta must cut virtual time: {} vs {}",
        on.total_time,
        off.total_time
    );
    assert_eq!(off.quiescent_iterations, 0, "only tracked under delta");
    assert!(
        on.quiescent_iterations > 0,
        "min-propagation converges well within {ITERS} iterations"
    );
}

#[test]
fn clean_nodes_are_never_packed() {
    // Property: a clean node never appears in a shadow buffer. Under
    // `StaticProgram` *every* node is clean in *every* iteration, so the
    // only shadow traffic delta mode may emit is the initial full sync —
    // exactly one iteration's worth of the full exchange.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = StaticProgram;
    const ITERS: u32 = 10;
    let oracle = seq::run_sequential(&graph, &program, ITERS);
    let cfg = RunConfig::new(8, ITERS).with_world(clean_world());
    let off = run(&graph, &program, &Metis::default(), || NoBalancer, &cfg);
    let on = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg.clone().with_delta_exchange(),
    );

    assert_eq!(on.final_data, oracle);
    assert_eq!(off.final_data, oracle);
    let full_per_iter = off.delta_entries_sent / ITERS as u64;
    assert_eq!(off.delta_entries_sent % ITERS as u64, 0);
    assert_eq!(
        on.delta_entries_sent, full_per_iter,
        "a fully static program sends exactly the initial resync"
    );
    assert_eq!(
        on.delta_entries_skipped,
        off.delta_entries_sent - full_per_iter,
        "every later entry must be suppressed"
    );
    // Changed counts are semantic (value inequality), not pack-based: the
    // forced initial resync still reports zero changed nodes, so every
    // iteration is globally quiescent.
    assert_eq!(on.quiescent_iterations, ITERS);
}

#[test]
fn delta_equivalence_across_the_chaos_matrix() {
    // Delta on vs delta off under every recovery path that forces a
    // resync: corruption/truncation (retransmits), drops + duplicates +
    // reorders with active migration, cooperative kill + evacuation,
    // uncooperative crash + rollback, and capacity-2 backpressure.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    const ITERS: u32 = 20;
    let oracle = seq::run_sequential(&graph, &program, ITERS);
    let clean_total = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(8, ITERS).with_world(clean_world()),
    )
    .total_time;

    let scenarios: Vec<(&str, RunConfig)> = vec![
        (
            "corruption",
            RunConfig::new(8, ITERS).with_world(world(
                FaultPlan::new(chaos_seed(3))
                    .with_corrupt(0.1)
                    .with_truncate(0.05),
            )),
        ),
        (
            "drops+migration",
            RunConfig::new(8, ITERS)
                .with_balancing(10)
                .with_validation()
                .with_world(world(
                    FaultPlan::new(chaos_seed(4))
                        .with_drop(0.05)
                        .with_delay(0.05, 2e-4)
                        .with_dup(0.05)
                        .with_reorder(0.05),
                )),
        ),
        (
            "kill+evacuation",
            RunConfig::new(8, ITERS)
                .with_balancing(10)
                .with_world(world(
                    FaultPlan::new(chaos_seed(5)).with_kill(2, clean_total * 0.4),
                )),
        ),
        (
            "crash+rollback",
            RunConfig::new(8, ITERS)
                .with_checkpointing(2)
                .with_world(world(
                    FaultPlan::new(chaos_seed(6)).with_crash(3, clean_total * 0.55),
                )),
        ),
        (
            "backpressure-cap2",
            RunConfig::new(8, ITERS).with_world(clean_world().with_mailbox_capacity(2)),
        ),
    ];

    for (name, cfg) in scenarios {
        let off = run(
            &graph,
            &program,
            &Metis::default(),
            CentralizedHeuristic::default,
            &cfg,
        );
        let on = run(
            &graph,
            &program,
            &Metis::default(),
            CentralizedHeuristic::default,
            &cfg.clone().with_delta_exchange(),
        );
        assert_eq!(
            on.final_data, oracle,
            "[{name}] delta mode must stay oracle-exact"
        );
        assert_eq!(
            off.final_data, oracle,
            "[{name}] full mode must stay oracle-exact"
        );
        assert_eq!(
            on.final_owner, off.final_owner,
            "[{name}] delta must not perturb placement decisions"
        );
    }
}

#[test]
fn delta_runs_are_bit_deterministic_under_chaos() {
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let plan = || {
        FaultPlan::new(chaos_seed(42))
            .with_drop(0.05)
            .with_corrupt(0.05)
            .with_truncate(0.02)
            .with_crash(3, 0.05)
    };
    let cfg = RunConfig::new(8, 12)
        .with_checkpointing(4)
        .with_world(world(plan()))
        .with_delta_exchange();
    let runs: Vec<_> = (0..2)
        .map(|_| run(&graph, &program, &Metis::default(), || NoBalancer, &cfg))
        .collect();
    let (a, b) = (&runs[0], &runs[1]);
    assert!(a.faults.any(), "the plan must actually inject faults");
    assert!(a.rollbacks > 0, "the crash must force a rollback");
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.delta_entries_sent, b.delta_entries_sent);
    assert_eq!(a.delta_entries_skipped, b.delta_entries_skipped);
    assert_eq!(a.quiescent_iterations, b.quiescent_iterations);
    assert_eq!(
        a.total_time.to_bits(),
        b.total_time.to_bits(),
        "delta-mode virtual time must be bit-identical under the same seed"
    );
}

#[test]
fn delta_traces_are_byte_identical_and_mark_skipped_entries() {
    // Same-seed delta runs render byte-identical trace.json/timeline
    // files, and the trace carries the new `delta_skipped` instants.
    // (Unbounded mailboxes, as for every byte-determinism check: bounded
    // credit-stall instants depend on host scheduling.)
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = MinProgram;
    let plan = || {
        FaultPlan::new(chaos_seed(42))
            .with_drop(0.05)
            .with_corrupt(0.05)
            .with_crash(3, 0.05)
    };
    let traced = || {
        run(
            &graph,
            &program,
            &Metis::default(),
            || NoBalancer,
            &RunConfig::new(8, 12)
                .with_checkpointing(4)
                .with_world(world(plan()))
                .with_delta_exchange()
                .with_tracing(),
        )
    };
    let (a, b) = (traced(), traced());
    let ta = a.trace.as_deref().expect("tracing was enabled");
    let tb = b.trace.as_deref().expect("tracing was enabled");
    assert_eq!(
        chrome_trace_json(ta),
        chrome_trace_json(tb),
        "same seed must render a byte-identical delta trace.json"
    );
    assert_eq!(timeline_json(ta), timeline_json(tb));
    let has_skip_instant = ta.iter().any(|(_, events)| {
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::Instant { name, .. } if *name == "delta_skipped"))
    });
    assert!(
        has_skip_instant,
        "delta runs must emit per-iteration delta_skipped instants"
    );
}
