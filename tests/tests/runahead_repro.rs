//! Throwaway repro: does a fast neighbour's next-round frame overwrite the
//! still-unabsorbed current-round frame in the bounded drain schedule?

use mpisim::{Config, Envelope, NetModel, RetryPolicy, World};
use std::collections::HashMap;
use std::time::Duration;

#[test]
fn runahead_overwrite() {
    let cfg = Config::virtual_time(NetModel::origin2000())
        .with_mailbox_capacity(4)
        .with_watchdog(Duration::from_secs(5));
    let out = World::new(cfg).run(3, |rank| {
        let me = rank.rank();
        let peers: Vec<usize> = match me {
            0 => vec![1],
            1 => vec![0, 2],
            _ => vec![1],
        };
        let mut results = Vec::new();
        for round in 0..3u32 {
            if me == 2 {
                std::thread::sleep(Duration::from_millis(100));
            }
            // send phase (mimics exchange::bounded_send)
            let mut frames: HashMap<usize, Envelope> = HashMap::new();
            for &p in &peers {
                loop {
                    if rank.offer_credit(p) {
                        rank.send_reliable_granted(
                            p,
                            1,
                            &(me as u32, round),
                            RetryPolicy::Escalate,
                        );
                        break;
                    }
                    if let Some(env) = rank.drain_one(None, 1) {
                        frames.insert(env.src, env);
                    } else {
                        rank.wait_incoming(Duration::from_millis(2));
                    }
                }
            }
            // collect phase (mimics exchange::bounded_collect)
            loop {
                let missing: Vec<usize> = peers
                    .iter()
                    .copied()
                    .filter(|p| !frames.contains_key(p))
                    .collect();
                if missing.is_empty() {
                    break;
                }
                let mut got = false;
                while let Some(env) = rank.drain_one(None, 1) {
                    frames.insert(env.src, env);
                    got = true;
                }
                if !got {
                    rank.wait_incoming(Duration::from_millis(2));
                }
            }
            for &p in &peers {
                let env = frames.remove(&p).unwrap();
                let (src, r): (u32, u32) = rank.absorb(env);
                assert_eq!(src as usize, p);
                assert_eq!(
                    r, round,
                    "rank {me} absorbed a round-{r} frame in round {round}"
                );
                results.push((round, src, r));
            }
        }
        results
    });
    drop(out);
}
