//! Run-ahead frame delivery under the bounded drain schedule.
//!
//! This file began life as a throwaway repro asking: "does a fast
//! neighbour's next-round frame overwrite the still-unabsorbed
//! current-round frame?" The original repro failed — and the triage
//! verdict (see DESIGN.md, "State integrity") is that the failure was a
//! misuse of the drain primitives, not a platform bug. The repro drained
//! with `drain_one(None, tag)` into a map keyed by *source rank only*,
//! while omitting the inter-round barrier that every production iteration
//! ends with (`exchange::step` closes each round with a promote + barrier
//! or control exchange). Without that barrier a fast peer legitimately
//! runs ahead: its round-`r+1` frame lands in the slow rank's mailbox
//! while the round-`r` frame is still unabsorbed, and the source-keyed
//! map overwrites the older frame. Delivery itself is FIFO per
//! (src, dst, tag) — nothing was lost or reordered on the wire.
//!
//! Two asserting regression tests replace the repro:
//!
//! * [`round_barrier_prevents_runahead`] — the production discipline: a
//!   barrier at the end of each round. With it, no frame from a future
//!   round can exist in any mailbox, so the original repro's exact
//!   per-round asserts hold deterministically.
//! * [`runahead_frames_arrive_fifo_per_source`] — the hazard variant:
//!   no barrier, so run-ahead frames DO arrive early. The drain loop
//!   keys by (src, round) instead of src, and asserts only the
//!   scheduling-independent invariants: per-source rounds arrive in
//!   strictly increasing order, no (src, round) pair is delivered twice,
//!   and every expected frame is eventually delivered.

use mpisim::{Config, Envelope, NetModel, Rank, RetryPolicy, World};
use std::collections::HashMap;
use std::time::Duration;

const ROUNDS: u32 = 3;

fn peers_of(me: usize) -> Vec<usize> {
    match me {
        0 => vec![1],
        1 => vec![0, 2],
        _ => vec![1],
    }
}

/// The original repro workload plus the production inter-round barrier.
/// The barrier guarantees every rank has absorbed all round-`r` frames
/// before anyone may send round `r+1`, so the strict "absorbed frame is
/// from the current round" assert is now correct and deterministic.
#[test]
fn round_barrier_prevents_runahead() {
    let cfg = Config::virtual_time(NetModel::origin2000())
        .with_mailbox_capacity(4)
        .with_watchdog(Duration::from_secs(5));
    let out = World::new(cfg).run(3, |rank| {
        let me = rank.rank();
        let peers = peers_of(me);
        let mut results = Vec::new();
        for round in 0..ROUNDS {
            if me == 2 {
                std::thread::sleep(Duration::from_millis(100));
            }
            // send phase (mimics exchange::bounded_send)
            let mut frames: HashMap<usize, Envelope> = HashMap::new();
            for &p in &peers {
                loop {
                    if rank.offer_credit(p) {
                        rank.send_reliable_granted(
                            p,
                            1,
                            &(me as u32, round),
                            RetryPolicy::Escalate,
                        );
                        break;
                    }
                    if let Some(env) = rank.drain_one(None, 1) {
                        frames.insert(env.src, env);
                    } else {
                        rank.wait_incoming(Duration::from_millis(2));
                    }
                }
            }
            // collect phase (mimics exchange::bounded_collect)
            loop {
                let missing: Vec<usize> = peers
                    .iter()
                    .copied()
                    .filter(|p| !frames.contains_key(p))
                    .collect();
                if missing.is_empty() {
                    break;
                }
                let mut got = false;
                while let Some(env) = rank.drain_one(None, 1) {
                    frames.insert(env.src, env);
                    got = true;
                }
                if !got {
                    rank.wait_incoming(Duration::from_millis(2));
                }
            }
            for &p in &peers {
                let env = frames.remove(&p).unwrap();
                let (src, r): (u32, u32) = rank.absorb(env);
                assert_eq!(src as usize, p);
                assert_eq!(
                    r, round,
                    "rank {me} absorbed a round-{r} frame in round {round}"
                );
                results.push((round, src, r));
            }
            // The production discipline the original repro omitted: every
            // iteration of exchange::step ends with a barrier (or control
            // exchange), which is what makes source-keyed collection safe.
            rank.barrier();
        }
        results
    });
    for (r, results) in out.iter().enumerate() {
        assert_eq!(
            results.len(),
            peers_of(r).len() * ROUNDS as usize,
            "rank {r} must absorb one frame per peer per round"
        );
    }
}

/// The hazard variant: no barrier, so fast peers run ahead and their
/// future-round frames land early. That is legal — delivery stays FIFO
/// per source — so the drain loop must key by (src, round). Asserts only
/// the invariants that hold under every interleaving.
#[test]
fn runahead_frames_arrive_fifo_per_source() {
    let cfg = Config::virtual_time(NetModel::origin2000())
        .with_mailbox_capacity(4)
        .with_watchdog(Duration::from_secs(5));
    let out = World::new(cfg).run(3, |rank| {
        let me = rank.rank();
        let peers = peers_of(me);
        // Absorbed frames keyed by (src, round); survives across rounds
        // so run-ahead frames are buffered instead of clobbered.
        let mut pending: HashMap<(usize, u32), ()> = HashMap::new();
        let mut last_round: HashMap<usize, u32> = HashMap::new();
        fn note(
            me: usize,
            env: Envelope,
            rank: &Rank,
            pending: &mut HashMap<(usize, u32), ()>,
            last_round: &mut HashMap<usize, u32>,
        ) {
            let src = env.src;
            let (s, r): (u32, u32) = rank.absorb(env);
            assert_eq!(s as usize, src, "payload src must match envelope src");
            if let Some(&prev) = last_round.get(&src) {
                assert!(
                    r > prev,
                    "rank {me}: src {src} delivered round {r} after round {prev} \
                     — per-source FIFO violated"
                );
            }
            last_round.insert(src, r);
            let dup = pending.insert((src, r), ());
            assert!(
                dup.is_none(),
                "rank {me}: duplicate delivery of (src {src}, round {r})"
            );
        }
        for round in 0..ROUNDS {
            if me == 2 {
                std::thread::sleep(Duration::from_millis(100));
            }
            for &p in &peers {
                loop {
                    if rank.offer_credit(p) {
                        rank.send_reliable_granted(
                            p,
                            1,
                            &(me as u32, round),
                            RetryPolicy::Escalate,
                        );
                        break;
                    }
                    if let Some(env) = rank.drain_one(None, 1) {
                        note(me, env, rank, &mut pending, &mut last_round);
                    } else {
                        rank.wait_incoming(Duration::from_millis(2));
                    }
                }
            }
            loop {
                if peers.iter().all(|&p| pending.contains_key(&(p, round))) {
                    break;
                }
                let mut got = false;
                while let Some(env) = rank.drain_one(None, 1) {
                    note(me, env, rank, &mut pending, &mut last_round);
                    got = true;
                }
                if !got {
                    rank.wait_incoming(Duration::from_millis(2));
                }
            }
        }
        // Eventual completeness: every peer's every round was delivered
        // exactly once, regardless of how far anyone ran ahead.
        for &p in &peers {
            for r in 0..ROUNDS {
                assert!(
                    pending.contains_key(&(p, r)),
                    "rank {me}: missing (src {p}, round {r})"
                );
            }
        }
        pending.len()
    });
    for (r, n) in out.iter().enumerate() {
        assert_eq!(*n, peers_of(r).len() * ROUNDS as usize);
    }
}
