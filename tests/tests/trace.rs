//! Virtual-time tracing determinism and zero-cost guarantees.
//!
//! Two properties anchor the trace subsystem:
//!
//! 1. **Byte determinism** — the recorder only samples the virtual clock
//!    and program-order counters, and the sinks serialize f64s with Rust's
//!    shortest-roundtrip formatter, so two same-seed chaos runs render
//!    byte-identical `trace.json` and timeline files — at every mailbox
//!    capacity. Credit-stall instants are recorded by the *receiver* at
//!    the stall's canonical virtual-time resolution point (a pure function
//!    of the deterministic message schedule), not when a sender physically
//!    blocks, so bounded runs are no exception.
//! 2. **Zero cost when disabled, zero *interference* when enabled** — the
//!    recorder never touches any clock, so results and `total_time` are
//!    bit-identical with tracing on and off, including under chaos.

use ic2mpi::prelude::*;
use ic2mpi::{chrome_trace_json, timeline_json, RunReport, TraceEvent};
use mpisim::{FaultPlan, NetModel};
use std::time::Duration;

fn world(plan: FaultPlan) -> mpisim::Config {
    mpisim::Config::virtual_time(NetModel::origin2000())
        .with_watchdog(Duration::from_secs(30))
        .with_faults(plan)
}

/// The chaos workload every test here records: drops, corruption,
/// truncation, and an uncooperative crash of rank 3 under checkpointing —
/// so the trace exercises retries, NACKs, crash timeouts, checkpoints and
/// a rollback.
fn chaos_plan() -> FaultPlan {
    FaultPlan::new(42)
        .with_drop(0.05)
        .with_corrupt(0.05)
        .with_truncate(0.02)
        .with_crash(3, 0.05)
}

fn chaos_cfg(tracing: bool) -> RunConfig {
    let cfg = RunConfig::new(8, 12)
        .with_checkpointing(4)
        .with_world(world(chaos_plan()));
    if tracing {
        cfg.with_tracing()
    } else {
        cfg
    }
}

fn traced_run() -> RunReport<i64> {
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &chaos_cfg(true),
    )
}

#[test]
fn same_seed_chaos_traces_are_byte_identical() {
    let (a, b) = (traced_run(), traced_run());
    let ta = a.trace.as_deref().expect("tracing was enabled");
    let tb = b.trace.as_deref().expect("tracing was enabled");
    assert_eq!(
        chrome_trace_json(ta),
        chrome_trace_json(tb),
        "same seed must render a byte-identical trace.json"
    );
    assert_eq!(
        timeline_json(ta),
        timeline_json(tb),
        "same seed must render a byte-identical timeline"
    );
}

#[test]
fn bounded_mailbox_traces_are_byte_identical() {
    // Historically bounded mailboxes were carved out of the
    // byte-determinism claim because credit-stall instants were emitted
    // when a sender physically blocked — a host-scheduling accident.
    // They are now recorded by the receiver at the stall's canonical
    // virtual-time resolution point, so the carve-out is gone: same seed,
    // same capacity, same bytes.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    for cap in [2usize, 4] {
        let cfg = RunConfig::new(8, 12)
            .with_checkpointing(4)
            .with_world(world(chaos_plan()).with_mailbox_capacity(cap))
            .with_tracing();
        let run_once = || run(&graph, &program, &Metis::default(), || NoBalancer, &cfg);
        let (a, b) = (run_once(), run_once());
        let ta = a.trace.as_deref().expect("tracing was enabled");
        let tb = b.trace.as_deref().expect("tracing was enabled");
        assert_eq!(
            chrome_trace_json(ta),
            chrome_trace_json(tb),
            "capacity {cap}: same seed must render a byte-identical trace.json"
        );
        assert_eq!(timeline_json(ta), timeline_json(tb), "capacity {cap}");
        assert_eq!(a.credit_stalls, b.credit_stalls, "capacity {cap}");
    }
}

#[test]
fn tracing_is_invisible_to_the_simulation() {
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let run_with = |tracing| {
        run(
            &graph,
            &program,
            &Metis::default(),
            || NoBalancer,
            &chaos_cfg(tracing),
        )
    };
    let off = run_with(false);
    let on = run_with(true);
    assert!(off.trace.is_none(), "no collector when tracing is off");
    assert!(on.trace.is_some());
    assert_eq!(on.final_data, off.final_data);
    assert_eq!(on.final_owner, off.final_owner);
    assert_eq!(on.faults, off.faults);
    assert_eq!(on.rollbacks, off.rollbacks);
    assert_eq!(
        on.total_time.to_bits(),
        off.total_time.to_bits(),
        "recording must never touch the virtual clock"
    );
    assert_eq!(off.negative_clamps, 0);
    assert_eq!(on.negative_clamps, 0);
}

#[test]
fn trace_covers_every_rank_and_marks_the_faults() {
    let report = traced_run();
    let traces = report.trace.as_deref().expect("tracing was enabled");
    assert_eq!(traces.len(), 8, "one event buffer per rank, crashed or not");

    let names = |rank: usize| -> Vec<&'static str> {
        traces[rank]
            .1
            .iter()
            .map(|e| match e {
                TraceEvent::Span { name, .. } | TraceEvent::Instant { name, .. } => *name,
            })
            .collect()
    };
    for (rank, events) in traces {
        assert!(
            names(*rank).contains(&"Initialization"),
            "rank {rank} must record its init phase"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TraceEvent::Span { name, .. } if *name == "iteration")),
            "rank {rank} must record iteration spans"
        );
    }
    // The crashed rank flushed its buffer on unwind, crash instant included.
    assert!(
        names(3).contains(&"crash"),
        "rank 3's buffer must survive the crash and mark it: {:?}",
        names(3)
    );
    // Survivors checkpointed and rolled back.
    let survivor = names(0);
    assert!(survivor.contains(&"checkpoint"), "{survivor:?}");
    assert!(survivor.contains(&"rollback"), "{survivor:?}");
    assert!(survivor.contains(&"Recovery"), "{survivor:?}");
}

#[test]
fn timeline_reports_per_iteration_phase_seconds_and_imbalance() {
    let report = traced_run();
    let traces = report.trace.as_deref().expect("tracing was enabled");
    let timeline = timeline_json(traces);
    assert!(timeline.starts_with("{\"iterations\":["));
    for key in [
        "\"iter\":1,",
        "\"imbalance\":",
        "\"compute\":",
        "\"comm\":",
        "\"integrity\":",
        "\"balance\":",
        "\"sent\":",
        "\"recv\":",
    ] {
        assert!(timeline.contains(key), "timeline lacks {key}: {timeline}");
    }
}
