//! Partition-tolerance tests: deterministic network partitions, the
//! quorum-gated degraded mode, minority parking, and live rank rejoin.
//!
//! Every scenario must (a) complete, (b) converge byte-identically to the
//! sequential oracle (the heal rollback discards and replays the whole
//! degraded stretch), and (c) be bit-deterministic across same-seed
//! re-runs — including `total_time`, because every cut, detection timeout
//! and replayed iteration is charged to the virtual clock.

use ic2mpi::prelude::*;
use ic2mpi::seq;
use mpisim::{FaultPlan, NetModel};
use std::time::Duration;

fn world(plan: FaultPlan) -> mpisim::Config {
    mpisim::Config::virtual_time(NetModel::origin2000())
        .with_watchdog(Duration::from_secs(30))
        .with_faults(plan)
}

fn clean_world() -> mpisim::Config {
    mpisim::Config::virtual_time(NetModel::origin2000()).with_watchdog(Duration::from_secs(30))
}

/// Fault-plan seed, overridable via `CHAOS_SEED` (see chaos.rs): every
/// assertion here is seed-agnostic, so CI can sweep seeds.
fn chaos_seed(default: u64) -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[test]
fn partition_sweep_heals_and_replays_exactly() {
    // A 3-vs-1 partition swept over a (start, duration) grid of the clean
    // run's timeline: wherever the window lands — early (before the first
    // checkpoint commits), mid-run, or overhanging the end of the
    // iteration space — the run must heal, rejoin, and converge to the
    // oracle, twice, bit-identically.
    let graph = ic2_graph::generators::hex_grid_n(16);
    let program = AvgProgram::fine();
    let nprocs = 4;
    let iterations = 6u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let clean_total = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(nprocs, iterations).with_world(clean_world()),
    )
    .total_time;

    // The detection timeout must stay small relative to the window: every
    // cut receive charges one timeout, and a timeout comparable to the
    // window would let the virtual clock overshoot `until` before the
    // first boundary verdict — collapsing the partition into a blip.
    for start in [0.2, 0.45, 0.7] {
        for dur in [0.2, 0.35] {
            let (from, until) = (clean_total * start, clean_total * (start + dur));
            let plan = || {
                FaultPlan::new(chaos_seed(41))
                    .with_partition(vec![vec![0, 1, 2], vec![3]], from, until)
                    .with_detect_timeout(1e-4)
            };
            let cfg = |p| {
                RunConfig::new(nprocs, iterations)
                    .with_checkpointing(2)
                    .with_partition_tolerance()
                    .with_world(world(p))
                    .with_validation()
            };
            let a = run(
                &graph,
                &program,
                &Metis::default(),
                || NoBalancer,
                &cfg(plan()),
            );
            assert_eq!(
                a.final_data, oracle,
                "start {start} dur {dur}: heal + replay must be exact"
            );
            assert!(a.rejoins >= 1, "start {start} dur {dur}: {:?}", a.rejoins);
            assert!(
                a.degraded_iterations > 0,
                "start {start} dur {dur}: the window must be noticed"
            );
            let b = run(
                &graph,
                &program,
                &Metis::default(),
                || NoBalancer,
                &cfg(plan()),
            );
            assert_eq!(a.final_data, b.final_data, "start {start} dur {dur}");
            assert_eq!(a.rejoins, b.rejoins, "start {start} dur {dur}");
            assert_eq!(a.rollbacks, b.rollbacks, "start {start} dur {dur}");
            assert_eq!(a.faults, b.faults, "start {start} dur {dur}");
            assert_eq!(
                a.total_time.to_bits(),
                b.total_time.to_bits(),
                "start {start} dur {dur}: total time must be bit-identical"
            );
        }
    }
}

#[test]
fn quarter_run_partition_rejoins_the_minority() {
    // The acceptance scenario: a 2-group partition spanning well over a
    // quarter of the iteration space. The majority continues degraded, the
    // minority parks, the heal rejoins it with buddy state transfer, and
    // the replayed result is byte-identical to the oracle.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let nprocs = 8;
    let iterations = 20u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let clean = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(nprocs, iterations).with_world(clean_world()),
    );

    let groups = vec![vec![0, 1, 2, 3, 4, 5], vec![6, 7]];
    let plan = FaultPlan::new(chaos_seed(43))
        .with_partition(groups, clean.total_time * 0.4, clean.total_time * 0.75)
        .with_detect_timeout(5e-4);
    let cfg = RunConfig::new(nprocs, iterations)
        .with_checkpointing(3)
        .with_partition_tolerance()
        .with_world(world(plan))
        .with_validation();
    let report = run(&graph, &program, &Metis::default(), || NoBalancer, &cfg);
    assert_eq!(report.final_data, oracle, "rejoin + replay must be exact");
    assert!(report.rejoins >= 1, "the minority must rejoin");
    assert!(report.degraded_iterations > 0);
    assert_eq!(report.suspected_peak, 2, "both minority ranks suspected");
    assert!(
        report.rejoin_bytes > 0,
        "rejoining ranks re-fetch their checkpoint image from buddies"
    );
    assert!(
        report.iterations_replayed > 0,
        "the degraded stretch is discarded and replayed"
    );
    assert!(report.faults.partition_cuts > 0, "{:?}", report.faults);
    assert!(report.faults.partition_timeouts > 0, "{:?}", report.faults);
    assert!(
        report.total_time > clean.total_time,
        "degradation, parking and replay must cost virtual time"
    );
}

#[test]
fn no_quorum_parks_everyone_until_heal() {
    // A 2-vs-2 split leaves no group with a majority: every rank is
    // suspected, everyone parks (nobody mutates state), and the virtual
    // clock rides detection timeouts until the window closes. The heal
    // then replays everything since the last checkpoint.
    let graph = ic2_graph::generators::hex_grid_n(16);
    let program = AvgProgram::fine();
    let nprocs = 4;
    let iterations = 6u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let clean_total = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(nprocs, iterations).with_world(clean_world()),
    )
    .total_time;

    let plan = || {
        FaultPlan::new(chaos_seed(47))
            .with_partition(
                vec![vec![0, 1], vec![2, 3]],
                clean_total * 0.4,
                clean_total * 0.75,
            )
            .with_detect_timeout(1e-4)
    };
    let cfg = |p| {
        RunConfig::new(nprocs, iterations)
            .with_checkpointing(2)
            .with_partition_tolerance()
            .with_world(world(p))
            .with_validation()
    };
    let a = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, oracle);
    assert_eq!(a.suspected_peak, 4, "no quorum: every rank is suspected");
    assert!(a.rejoins >= 1);
    assert!(a.degraded_iterations > 0);
    let b = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
}

#[test]
fn partition_composes_with_crash() {
    // A rank crashes *while the network is partitioned*. Rolling back
    // across an active cut would stall on unreachable buddies, so the
    // crash is deferred: the heal rollback adopts the dead rank's nodes
    // out of the buddy copy along with rejoining the parked minority.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let nprocs = 8;
    let iterations = 14u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let clean_total = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(nprocs, iterations).with_world(clean_world()),
    )
    .total_time;

    let plan = || {
        FaultPlan::new(chaos_seed(53))
            .with_partition(
                vec![vec![0, 1, 2, 3, 4, 5], vec![6, 7]],
                clean_total * 0.45,
                clean_total * 0.75,
            )
            .with_crash(2, clean_total * 0.55)
            .with_detect_timeout(5e-4)
    };
    let cfg = |p| {
        RunConfig::new(nprocs, iterations)
            .with_checkpointing(3)
            .with_partition_tolerance()
            .with_world(world(p))
            .with_validation()
    };
    let a = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(
        a.final_data, oracle,
        "deferred crash recovery must be exact"
    );
    assert!(a.rejoins >= 1, "the minority must still rejoin");
    assert!(a.rollbacks >= 1, "the crash must eventually roll back");
    assert!(a.ranks_died.contains(&2), "{:?}", a.ranks_died);
    assert!(!a.final_owner.contains(&2), "a crashed rank owns nothing");
    let b = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
}

#[test]
fn partition_composes_with_delta_exchange_and_balancing() {
    // Delta shadow exchange, periodic balancing and a partition in one
    // run: suppressed clean-node traffic and migration both replay
    // deterministically through the heal rollback.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::shifting();
    let nprocs = 8;
    let iterations = 20u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let clean_total = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(nprocs, iterations).with_world(clean_world()),
    )
    .total_time;

    let plan = || {
        FaultPlan::new(chaos_seed(59))
            .with_partition(
                vec![vec![0, 1, 2, 3, 4, 5, 6], vec![7]],
                clean_total * 0.5,
                clean_total * 0.8,
            )
            .with_detect_timeout(5e-4)
    };
    let cfg = |p| {
        RunConfig::new(nprocs, iterations)
            .with_balancing(10)
            .with_checkpointing(4)
            .with_delta_exchange()
            .with_partition_tolerance()
            .with_world(world(p))
            .with_validation()
    };
    let a = run(
        &graph,
        &program,
        &Metis::default(),
        || CentralizedHeuristic { threshold: 0.05 },
        &cfg(plan()),
    );
    assert_eq!(a.final_data, oracle, "delta + balance + partition: exact");
    assert!(a.rejoins >= 1);
    assert!(a.delta_entries_skipped > 0, "delta suppression must engage");
    let b = run(
        &graph,
        &program,
        &Metis::default(),
        || CentralizedHeuristic { threshold: 0.05 },
        &cfg(plan()),
    );
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.migrations, b.migrations);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
}

#[test]
fn link_drops_repair_like_ordinary_drops() {
    // Asymmetric per-link loss (one noisy directed link at 60%) rides the
    // ordinary retry machinery — no membership protocol needed — and must
    // stay oracle-exact with the loss visible in the per-link counter.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let iterations = 15u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let plan = || {
        FaultPlan::new(chaos_seed(61))
            .with_link_drop(1, 2, 0.6)
            .with_link_drop(5, 4, 0.3)
    };
    let cfg = RunConfig::new(8, iterations)
        .with_world(world(plan()))
        .with_validation();
    let a = run(&graph, &program, &Metis::default(), || NoBalancer, &cfg);
    assert_eq!(a.final_data, oracle);
    assert!(a.faults.link_dropped > 0, "{:?}", a.faults);
    assert!(a.faults.retries > 0, "lost frames must be retried");
    let b = run(&graph, &program, &Metis::default(), || NoBalancer, &cfg);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
}

#[test]
fn partition_blip_rolls_back_without_rejoin() {
    // A window too short to span a detection boundary: frames are lost
    // mid-iteration but by the time the verdict resolves the window has
    // closed, so nobody is suspected. The cut bit piggybacked on the
    // control word still forces a plain rollback of the damaged iteration
    // — no rejoin, no degraded stretch, still oracle-exact.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let nprocs = 8;
    let iterations = 10u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let clean_total = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(nprocs, iterations).with_world(clean_world()),
    )
    .total_time;

    let iter_span = clean_total / iterations as f64;
    let plan = || {
        FaultPlan::new(chaos_seed(67))
            .with_partition(
                vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]],
                clean_total * 0.42,
                clean_total * 0.42 + iter_span * 0.35,
            )
            .with_detect_timeout(5e-4)
    };
    let cfg = |p| {
        RunConfig::new(nprocs, iterations)
            .with_checkpointing(2)
            .with_partition_tolerance()
            .with_world(world(p))
            .with_validation()
    };
    let a = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, oracle, "blip rollback must be exact");
    assert!(a.faults.partition_cuts > 0, "the blip must cut frames");
    assert!(a.rollbacks >= 1, "the damaged iteration must be discarded");
    let b = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.rejoins, b.rejoins);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
}
