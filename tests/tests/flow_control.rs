//! Bounded mailboxes, credit-based flow control, and the flow-control
//! deadlock detector.
//!
//! The capacity sweep's central claim: bounding every mailbox — all the way
//! down to two slots — changes *when* senders run, but not *what* the
//! platform computes or what the virtual clock reads. The bounded exchange
//! drains opportunistically while waiting for credits and charges receipts
//! in canonical order, so results and virtual-time totals are bit-identical
//! to the unbounded run. Credit stalls are counted at their canonical
//! resolution point by the *receiver* — per bounded exchange round,
//! `max(0, frames_present - capacity)` senders must have waited for a
//! slot — so the counts are a pure function of the deterministic message
//! schedule: identical across same-seed runs, monotone non-increasing in
//! capacity, and zero when mailboxes are unbounded.

use ic2_battlefield::{BattlefieldProgram, Scenario};
use ic2mpi::prelude::*;
use ic2mpi::seq;
use mpisim::{FaultPlan, NetModel, RetryPolicy};
use std::time::Duration;

fn vt_world() -> mpisim::Config {
    mpisim::Config::virtual_time(NetModel::origin2000()).with_watchdog(Duration::from_secs(30))
}

#[test]
fn bounded_capacities_match_the_unbounded_run_bit_for_bit() {
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::shifting();
    let cfg = |world| {
        RunConfig::new(8, 20)
            .with_balancing(10)
            .with_world(world)
            .with_validation()
    };
    let baseline = run(
        &graph,
        &program,
        &Metis::default(),
        || CentralizedHeuristic { threshold: 0.05 },
        &cfg(vt_world()),
    );
    assert_eq!(
        baseline.credit_stalls, 0,
        "unbounded mailboxes can never stall a sender"
    );
    for cap in [8, 4, 3, 2] {
        let bounded = run(
            &graph,
            &program,
            &Metis::default(),
            || CentralizedHeuristic { threshold: 0.05 },
            &cfg(vt_world().with_mailbox_capacity(cap)),
        );
        assert_eq!(
            bounded.final_data, baseline.final_data,
            "capacity {cap}: no frame may be lost to backpressure"
        );
        assert_eq!(bounded.final_owner, baseline.final_owner, "capacity {cap}");
        assert_eq!(bounded.migrations, baseline.migrations, "capacity {cap}");
        assert_eq!(
            bounded.total_time.to_bits(),
            baseline.total_time.to_bits(),
            "capacity {cap}: the virtual clock must not see the backpressure"
        );
        // Peak depth is still a scheduling phenomenon (unlike the now
        // canonical credit-stall counts) — the control plane bypasses
        // capacity, so no ordering against the unbounded run (or even
        // against `cap`) is deterministic. Only assert that the gauge
        // observed traffic at all.
        assert!(
            bounded.peak_mailbox_depth > 0,
            "capacity {cap}: messages flowed, the depth gauge must move"
        );
    }
}

#[test]
fn credit_stall_counts_are_canonical() {
    // Dense random graph on 8 ranks: most ranks receive shadow frames
    // from most others every round, so small capacities must overflow.
    // The canonical count is a pure function of (schedule, capacity):
    // same seed → same count, and fewer slots can never mean fewer
    // stalls, because each round contributes max(0, present - capacity).
    let graph = ic2_graph::generators::thesis_random_graph(64, 7);
    let program = AvgProgram::fine();
    let cfg = |cap: Option<usize>| {
        let mut world = vt_world();
        if let Some(c) = cap {
            world = world.with_mailbox_capacity(c);
        }
        RunConfig::new(8, 10).with_world(world)
    };
    let run_cap = |cap| {
        run(
            &graph,
            &program,
            &Metis::default(),
            || NoBalancer,
            &cfg(cap),
        )
    };
    let at2 = run_cap(Some(2));
    let again = run_cap(Some(2));
    assert_eq!(
        at2.credit_stalls, again.credit_stalls,
        "same seed, same capacity: the canonical count must not wobble"
    );
    let at3 = run_cap(Some(3));
    assert!(
        at2.credit_stalls > 0,
        "capacity 2 on a dense graph must overflow"
    );
    assert!(
        at2.credit_stalls >= at3.credit_stalls,
        "fewer slots cannot mean fewer stalls: {} < {}",
        at2.credit_stalls,
        at3.credit_stalls
    );
    assert_eq!(run_cap(None).credit_stalls, 0);
}

#[test]
fn battlefield_at_capacity_two_is_exact() {
    // The acceptance bar: the thesis battlefield, minimum capacity, no
    // faults — identical data and bit-identical time to the unbounded run.
    let bf = BattlefieldProgram::new(&Scenario::thesis());
    let terrain = bf.terrain();
    let unbounded = run(
        &terrain,
        &bf,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(8, 5).with_world(vt_world()),
    );
    let bounded = run(
        &terrain,
        &bf,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(8, 5).with_world(vt_world().with_mailbox_capacity(2)),
    );
    assert_eq!(bounded.final_data, unbounded.final_data);
    assert_eq!(bounded.total_time.to_bits(), unbounded.total_time.to_bits());
}

#[test]
fn overlap_exchange_is_capacity_oblivious_too() {
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let cfg = |world| {
        RunConfig::new(8, 15)
            .with_exchange(ExchangeMode::Overlap)
            .with_world(world)
            .with_validation()
    };
    let unbounded = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(vt_world()),
    );
    for cap in [4, 2] {
        let bounded = run(
            &graph,
            &program,
            &Metis::default(),
            || NoBalancer,
            &cfg(vt_world().with_mailbox_capacity(cap)),
        );
        assert_eq!(bounded.final_data, unbounded.final_data, "capacity {cap}");
        assert_eq!(
            bounded.total_time.to_bits(),
            unbounded.total_time.to_bits(),
            "capacity {cap}"
        );
    }
}

#[test]
fn starved_mailboxes_with_corruption_repair_identically() {
    // Corruption faults under starvation: retransmit decisions are pure in
    // the message identity, so the repair traffic — and the virtual time it
    // costs — must be identical at every capacity, including unbounded.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::shifting();
    let oracle = seq::run_sequential(&graph, &program, 15);
    let plan = || FaultPlan::new(77).with_corrupt(0.05).with_truncate(0.02);
    let cfg = |world| RunConfig::new(8, 15).with_world(world).with_validation();
    let unbounded = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(vt_world().with_faults(plan())),
    );
    assert_eq!(unbounded.final_data, oracle);
    assert!(unbounded.faults.retransmits > 0, "{:?}", unbounded.faults);
    assert_eq!(unbounded.credit_stalls, 0);
    for cap in [4, 2] {
        let bounded = run(
            &graph,
            &program,
            &Metis::default(),
            || NoBalancer,
            &cfg(vt_world().with_faults(plan()).with_mailbox_capacity(cap)),
        );
        assert_eq!(bounded.final_data, oracle, "capacity {cap}");
        assert_eq!(
            bounded.faults, unbounded.faults,
            "capacity {cap}: fault counters are schedule-independent"
        );
        assert_eq!(
            bounded.total_time.to_bits(),
            unbounded.total_time.to_bits(),
            "capacity {cap}"
        );
    }
}

#[test]
fn escalating_corruption_never_shrinks_retransmits_at_capacity_two() {
    // The monotone-counter half of the starvation matrix: with a fixed
    // seed, raising the corruption probability only adds mangle decisions
    // (pure threshold tests over the same hash stream), so the retransmit
    // counter is monotone — even with every mailbox starved to two slots.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let oracle = seq::run_sequential(&graph, &program, 12);
    let mut prev = 0u64;
    for p in [0.0, 0.02, 0.08, 0.2] {
        let plan = FaultPlan::new(123).with_corrupt(p).with_truncate(p * 0.5);
        let report = run(
            &graph,
            &program,
            &Metis::default(),
            || NoBalancer,
            &RunConfig::new(8, 12)
                .with_world(vt_world().with_faults(plan).with_mailbox_capacity(2))
                .with_validation(),
        );
        assert_eq!(report.final_data, oracle, "p={p}");
        assert!(
            report.faults.retransmits >= prev,
            "p={p}: retransmits shrank from {prev} to {}",
            report.faults.retransmits
        );
        prev = report.faults.retransmits;
    }
    assert!(prev > 0, "the top corruption rate must force retransmits");
}

#[test]
fn crash_recovery_completes_under_bounded_mailboxes() {
    // Rollback recovery's traffic (mirrors ring fan-in-1, adoption
    // packages, the gather) must make progress under capacity 4: receivers
    // drain as senders stall, so credits always eventually free up.
    let graph = ic2_graph::generators::hex_grid_n(16);
    let program = AvgProgram::fine();
    let iterations = 6u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let clean_total = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(4, iterations).with_world(vt_world()),
    )
    .total_time;
    let plan = FaultPlan::new(55).with_crash(1, clean_total * 0.5);
    let report = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(4, iterations)
            .with_checkpointing(2)
            .with_world(vt_world().with_faults(plan).with_mailbox_capacity(4))
            .with_validation(),
    );
    assert_eq!(report.final_data, oracle, "bounded recovery must be exact");
    assert!(report.rollbacks >= 1);
    assert!(!report.final_owner.contains(&1));
}

#[test]
fn planted_cyclic_wait_escalates_to_a_typed_error() {
    // A genuine flow-control deadlock: every rank floods its right
    // neighbour with more frames than the mailbox holds before receiving
    // anything, so the credit waits form a cycle 0 → 1 → 2 → 3 → 0 that no
    // amount of waiting can resolve. The detector must name the cycle in a
    // typed error instead of hanging until the watchdog kills the run.
    let n = 4;
    let result = catch_flow_deadlock(|| {
        let cfg = mpisim::Config::virtual_time(NetModel::origin2000())
            .with_watchdog(Duration::from_secs(30))
            .with_mailbox_capacity(2);
        mpisim::World::new(cfg).run(n, |rank| {
            let right = (rank.rank() + 1) % rank.size();
            for i in 0..8u64 {
                rank.send_reliable(right, 3, &i, RetryPolicy::Escalate);
            }
            let left = (rank.rank() + rank.size() - 1) % rank.size();
            let mut sum = 0u64;
            for _ in 0..8 {
                sum += rank.recv::<u64>(left, 3);
            }
            sum
        })
    });
    match result {
        Err(PlatformError::FlowControlDeadlock { cycle }) => {
            assert_eq!(cycle.len(), n, "all four ranks wait in the cycle");
            assert_eq!(cycle[0], 0, "the cycle is rotated smallest-first");
            let mut sorted = cycle.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
            for (i, &r) in cycle.iter().enumerate() {
                let next = cycle[(i + 1) % cycle.len()];
                assert_eq!(
                    next,
                    (r + 1) % n,
                    "each rank waits on its right neighbour: {cycle:?}"
                );
            }
        }
        Err(e) => panic!("expected FlowControlDeadlock, got {e}"),
        Ok(_) => panic!("the planted cycle must not complete"),
    }
}

#[test]
fn the_same_flood_completes_when_capacity_suffices() {
    // Control experiment for the planted deadlock: with eight slots the
    // flood fits and the ring drains normally.
    let result = catch_flow_deadlock(|| {
        let cfg = mpisim::Config::virtual_time(NetModel::origin2000())
            .with_watchdog(Duration::from_secs(30))
            .with_mailbox_capacity(8);
        mpisim::World::new(cfg).run(4, |rank| {
            let right = (rank.rank() + 1) % rank.size();
            for i in 0..8u64 {
                rank.send_reliable(right, 3, &i, RetryPolicy::Escalate);
            }
            let left = (rank.rank() + rank.size() - 1) % rank.size();
            let mut sum = 0u64;
            for _ in 0..8 {
                sum += rank.recv::<u64>(left, 3);
            }
            sum
        })
    });
    assert_eq!(result.expect("no deadlock"), vec![28u64; 4]);
}
