//! Memory-corruption chaos: silent at-rest bit flips composed with every
//! other fault class, plus the escalating multi-replica restore
//! acceptance pair.
//!
//! Silent corruption never touches the wire, so the PR 4 frame checksums
//! cannot see it — detection is the state audit's job (owned and shadow
//! regions) and the checkpoint entry checksums' job (replicas at rest).
//! Every test here demands the full contract: byte-identical convergence
//! to the sequential oracle, bit-identical same-seed `total_time`, and
//! identical fault counters across re-runs.

use ic2mpi::prelude::*;
use ic2mpi::seq;
use mpisim::{FaultPlan, MemRegion, NetModel};
use std::time::Duration;

fn world(plan: FaultPlan) -> mpisim::Config {
    mpisim::Config::virtual_time(NetModel::origin2000())
        .with_watchdog(Duration::from_secs(30))
        .with_faults(plan)
}

fn clean_world() -> mpisim::Config {
    mpisim::Config::virtual_time(NetModel::origin2000()).with_watchdog(Duration::from_secs(30))
}

/// Fault-plan seed, overridable via `CHAOS_SEED` (see chaos.rs). The
/// probabilistic assertions below stay comfortably seed-agnostic: every
/// `> 0` counter has double-digit expectation at the configured rates.
fn chaos_seed(default: u64) -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Blanket at-rest corruption on every rank.
fn corrupt_everyone(mut plan: FaultPlan, nprocs: usize, p: f64) -> FaultPlan {
    for r in 0..nprocs {
        plan = plan.with_memory_corrupt(r, p);
    }
    plan
}

#[test]
fn escalating_corruption_is_detected_and_repaired_exactly() {
    // Blanket corruption at escalating rates with audits every boundary:
    // every flipped bit must be caught by the next audit and repaired
    // (shadow resync or rollback + replay) without operator intervention,
    // landing byte-identical to the oracle, twice, bit-identically.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let nprocs = 8;
    let iterations = 12u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    for p in [0.005, 0.01, 0.015] {
        let plan = || corrupt_everyone(FaultPlan::new(chaos_seed(71)), nprocs, p);
        let cfg = |pl| {
            RunConfig::new(nprocs, iterations)
                .with_checkpointing(3)
                .with_state_audit(1)
                .with_replication(4)
                .with_world(world(pl))
                .with_validation()
        };
        let a = run(
            &graph,
            &program,
            &Metis::default(),
            || NoBalancer,
            &cfg(plan()),
        );
        assert_eq!(a.final_data, oracle, "p={p}: repair must be exact");
        assert!(a.memory_corruptions > 0, "p={p}: bits must actually flip");
        assert!(
            a.audit_mismatches > 0,
            "p={p}: the audit must catch live-region damage: {a:?}"
        );
        assert!(a.repairs > 0, "p={p}: detection must trigger repair");
        let b = run(
            &graph,
            &program,
            &Metis::default(),
            || NoBalancer,
            &cfg(plan()),
        );
        assert_eq!(a.final_data, b.final_data, "p={p}");
        assert_eq!(a.memory_corruptions, b.memory_corruptions, "p={p}");
        assert_eq!(a.audit_mismatches, b.audit_mismatches, "p={p}");
        assert_eq!(a.shadow_resyncs, b.shadow_resyncs, "p={p}");
        assert_eq!(a.bad_replicas, b.bad_replicas, "p={p}");
        assert_eq!(a.repairs, b.repairs, "p={p}");
        assert_eq!(a.faults, b.faults, "p={p}");
        assert_eq!(
            a.total_time.to_bits(),
            b.total_time.to_bits(),
            "p={p}: total time must be bit-identical"
        );
        assert_eq!(a.negative_clamps, 0, "p={p}");
    }
}

#[test]
fn memory_corruption_composes_with_crash_recovery() {
    // An uncooperative crash while every survivor's memory is rotting:
    // the rollback must restore from checksum-verified replicas, the
    // audits must keep scrubbing the replayed iterations, and the result
    // must still be exact.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let nprocs = 8;
    let iterations = 12u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let clean_total = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(nprocs, iterations).with_world(clean_world()),
    )
    .total_time;

    let plan = || {
        corrupt_everyone(FaultPlan::new(chaos_seed(73)), nprocs, 0.008)
            .with_crash(3, clean_total * 0.55)
    };
    let cfg = |pl| {
        RunConfig::new(nprocs, iterations)
            .with_checkpointing(3)
            .with_state_audit(1)
            .with_replication(3)
            .with_world(world(pl))
            .with_validation()
    };
    let a = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, oracle, "crash + rot recovery must be exact");
    assert!(a.rollbacks >= 1, "the crash must roll back");
    assert!(a.ranks_died.contains(&3), "{:?}", a.ranks_died);
    assert!(!a.final_owner.contains(&3));
    assert!(a.memory_corruptions > 0, "{a:?}");
    assert!(a.repairs > 0, "{a:?}");
    let b = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.rollbacks, b.rollbacks);
    assert_eq!(a.memory_corruptions, b.memory_corruptions);
    assert_eq!(a.bad_replicas, b.bad_replicas);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
}

#[test]
fn memory_corruption_composes_with_partition_tolerance() {
    // A quorum-gated partition while memory rots: sweeps and audits are
    // suspended during the degraded stretch (the heal rollback discards it
    // wholesale anyway), resume after rejoin, and the replayed result must
    // match the oracle. Audit interval 1, like every exactness test under
    // live-region rot: a looser interval lets the next iteration's promote
    // launder corruption into self-consistent state no audit can see (see
    // DESIGN.md, "State integrity").
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let nprocs = 8;
    let iterations = 16u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let clean_total = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(nprocs, iterations).with_world(clean_world()),
    )
    .total_time;

    let plan = || {
        corrupt_everyone(FaultPlan::new(chaos_seed(79)), nprocs, 0.01)
            .with_partition(
                vec![vec![0, 1, 2, 3, 4, 5], vec![6, 7]],
                clean_total * 0.4,
                clean_total * 0.7,
            )
            .with_detect_timeout(5e-4)
    };
    let cfg = |pl| {
        RunConfig::new(nprocs, iterations)
            .with_checkpointing(3)
            .with_state_audit(1)
            .with_replication(3)
            .with_partition_tolerance()
            .with_world(world(pl))
            .with_validation()
    };
    let a = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, oracle, "partition + rot must heal exactly");
    assert!(a.rejoins >= 1, "the minority must rejoin");
    assert!(a.degraded_iterations > 0);
    assert!(a.memory_corruptions > 0, "{a:?}");
    let b = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.rejoins, b.rejoins);
    assert_eq!(a.memory_corruptions, b.memory_corruptions);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
}

#[test]
fn memory_corruption_composes_with_delta_and_capacity_2_backpressure() {
    // Delta shadow exchange under the tightest legal mailbox (capacity 2)
    // while memory rots: retained shadow caches are exactly the state the
    // Shadow region corrupts, so the audit's owner-vs-shadow comparison
    // must catch stale deltas, force resyncs, and stay oracle-exact.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::shifting();
    let nprocs = 8;
    let iterations = 16u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let plan = || corrupt_everyone(FaultPlan::new(chaos_seed(83)), nprocs, 0.008);
    let cfg = |pl| {
        RunConfig::new(nprocs, iterations)
            .with_checkpointing(4)
            .with_state_audit(1)
            .with_replication(2)
            .with_delta_exchange()
            .with_world(
                mpisim::Config::virtual_time(NetModel::origin2000())
                    .with_watchdog(Duration::from_secs(30))
                    .with_mailbox_capacity(2)
                    .with_faults(pl),
            )
            .with_validation()
    };
    let a = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, oracle, "delta + backpressure + rot: exact");
    assert!(a.delta_entries_skipped > 0, "delta suppression must engage");
    assert!(a.memory_corruptions > 0, "{a:?}");
    assert!(a.repairs > 0, "{a:?}");
    let b = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.memory_corruptions, b.memory_corruptions);
    assert_eq!(a.shadow_resyncs, b.shadow_resyncs);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
}

#[test]
fn escalating_restore_survives_r_minus_1_bad_replicas() {
    // The acceptance scenario, made deterministic with region-scoped
    // corruption: rank 2 crashes, and its *first* ring buddy (rank 3)
    // rots every checkpoint copy it holds — including its own baseline —
    // with probability 1. At r = 2 the restore census flags rank 3's ward
    // as damaged, the election escalates to the second buddy (rank 4,
    // pristine), rank 3 itself is rescued with a verified copy from its
    // own buddies, and the run completes byte-identical to the oracle.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let nprocs = 8;
    let iterations = 12u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let clean_total = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(nprocs, iterations).with_world(clean_world()),
    )
    .total_time;

    let plan = || {
        FaultPlan::new(chaos_seed(89))
            .with_crash(2, clean_total * 0.55)
            .with_memory_corrupt_in(3, MemRegion::Replica, 1.0)
    };
    let cfg = |pl| {
        RunConfig::new(nprocs, iterations)
            .with_checkpointing(3)
            .with_replication(2)
            .with_world(world(pl))
            .with_validation()
    };
    let a = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(
        a.final_data, oracle,
        "restore must escalate past the rotten first replica"
    );
    assert!(a.rollbacks >= 1);
    assert!(a.ranks_died.contains(&2), "{:?}", a.ranks_died);
    assert!(!a.final_owner.contains(&2));
    assert!(
        a.bad_replicas >= 2,
        "rank 3's wards and its own baseline are all rotten: {a:?}"
    );
    assert!(
        a.repairs >= 1,
        "rank 3 must be rescued with a verified copy: {a:?}"
    );
    assert!(a.memory_corruptions > 0);
    let b = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.bad_replicas, b.bad_replicas);
    assert_eq!(a.repairs, b.repairs);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
}

#[test]
fn restore_fails_typed_when_every_replica_is_rotten() {
    // Same construction, but now BOTH of the crashed rank's ring buddies
    // (ranks 3 and 4, r = 2) rot their replicas at probability 1: every
    // copy of rank 2's state fails its checksum, the election exhausts the
    // ring, and the run must fail with the typed UnrecoverableState error
    // naming the unrecoverable rank — deterministically, twice.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let nprocs = 8;
    let iterations = 12u32;
    let clean_total = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(nprocs, iterations).with_world(clean_world()),
    )
    .total_time;

    let plan = || {
        FaultPlan::new(chaos_seed(97))
            .with_crash(2, clean_total * 0.55)
            .with_memory_corrupt_in(3, MemRegion::Replica, 1.0)
            .with_memory_corrupt_in(4, MemRegion::Replica, 1.0)
    };
    let cfg = |pl| {
        RunConfig::new(nprocs, iterations)
            .with_checkpointing(3)
            .with_replication(2)
            .with_world(world(pl))
            .with_validation()
    };
    let errs: Vec<PlatformError> = (0..2)
        .map(|_| {
            try_run(
                &graph,
                &program,
                &Metis::default(),
                || NoBalancer,
                &cfg(plan()),
            )
            .expect_err("no intact replica of rank 2 can exist")
        })
        .collect();
    for e in &errs {
        match e {
            PlatformError::UnrecoverableState { rank } => {
                assert_eq!(*rank, 2, "the typed error must name the lost owner")
            }
            other => panic!("expected UnrecoverableState, got {other:?}"),
        }
    }
}
