//! Chaos-mode tests: deterministic fault injection in the substrate and
//! the platform's self-healing responses — retries, skipped migrations,
//! emergency rebalancing, and rank-death evacuation.

use ic2_battlefield::{BattlefieldProgram, Scenario};
use ic2mpi::prelude::*;
use ic2mpi::seq;
use mpisim::{FaultPlan, NetModel};
use std::time::Duration;

fn world(plan: FaultPlan) -> mpisim::Config {
    mpisim::Config::virtual_time(NetModel::origin2000())
        .with_watchdog(Duration::from_secs(30))
        .with_faults(plan)
}

fn clean_world() -> mpisim::Config {
    mpisim::Config::virtual_time(NetModel::origin2000()).with_watchdog(Duration::from_secs(30))
}

/// Fault-plan seed, overridable via `CHAOS_SEED` so CI can sweep the whole
/// suite under several fixed seeds. Every assertion in this file is
/// seed-agnostic (determinism is always checked pairwise under the *same*
/// seed), so any override must pass.
fn chaos_seed(default: u64) -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[test]
fn fault_injection_is_fully_deterministic() {
    // Same seed, same plan ⇒ byte-identical final states, identical fault
    // counters, and bit-identical virtual-time totals — across drops,
    // delays, duplicates, reorders, a straggler, and active migration.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::shifting();
    let plan = || {
        FaultPlan::new(chaos_seed(42))
            .with_drop(0.05)
            .with_delay(0.05, 2e-4)
            .with_dup(0.05)
            .with_reorder(0.05)
            .with_straggler(3, 2.0)
    };
    let cfg = RunConfig::new(8, 25)
        .with_balancing(10)
        .with_world(world(plan()))
        .with_validation();
    let runs: Vec<_> = (0..2)
        .map(|_| {
            run(
                &graph,
                &program,
                &Metis::default(),
                || CentralizedHeuristic { threshold: 0.05 },
                &cfg,
            )
        })
        .collect();
    let (a, b) = (&runs[0], &runs[1]);
    assert!(a.faults.any(), "the plan must actually inject faults");
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.final_owner, b.final_owner);
    assert_eq!(a.migrations, b.migrations);
    assert_eq!(a.skipped_migrations, b.skipped_migrations);
    assert_eq!(a.faults, b.faults);
    assert_eq!(
        a.total_time.to_bits(),
        b.total_time.to_bits(),
        "virtual time must be bit-identical under the same fault seed"
    );
    assert_eq!(
        a.negative_clamps, 0,
        "no phase window may come out negative, even under chaos"
    );
}

#[test]
fn chaos_battlefield_converges_to_the_fault_free_answer() {
    // 5% drops, 5% delays, and one 3× straggler on the thesis battlefield:
    // the run must complete without deadlock and compute exactly what the
    // fault-free run computes, with the recovery visible in the counters.
    let bf = BattlefieldProgram::new(&Scenario::thesis());
    let terrain = bf.terrain();
    let clean = run(
        &terrain,
        &bf,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(8, 5).with_world(clean_world()),
    );
    assert!(!clean.faults.any());

    let plan = FaultPlan::new(chaos_seed(7))
        .with_drop(0.05)
        .with_delay(0.05, 2e-4)
        .with_straggler(2, 3.0);
    let chaotic = run(
        &terrain,
        &bf,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(8, 5).with_world(world(plan)),
    );
    assert_eq!(chaotic.final_data, clean.final_data);
    assert!(chaotic.faults.dropped > 0, "{:?}", chaotic.faults);
    assert!(chaotic.faults.delayed > 0, "{:?}", chaotic.faults);
    assert!(chaotic.faults.retries > 0, "{:?}", chaotic.faults);
    // Retransmissions and the straggler cost real (virtual) time.
    assert!(chaotic.total_time > clean.total_time);
}

#[test]
fn lost_migration_payloads_degrade_to_skipped_rounds() {
    // Drown the data plane: 95% drops with no retry budget. Shadow buffers
    // escalate their only attempt through (the BSP round must not
    // deadlock), but migration payloads give up and the planned pair is
    // skipped — and the answer must still be exact.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::shifting();
    let oracle = seq::run_sequential(&graph, &program, 25);
    let plan = FaultPlan::new(chaos_seed(11))
        .with_drop(0.95)
        .with_retry(1e-4, 0);
    let cfg = RunConfig::new(8, 25)
        .with_balancing(10)
        .with_world(world(plan))
        .with_validation();
    let report = run(
        &graph,
        &program,
        &Metis::default(),
        || CentralizedHeuristic { threshold: 0.05 },
        &cfg,
    );
    assert_eq!(report.final_data, oracle);
    assert!(report.faults.escalations > 0, "{:?}", report.faults);
    assert!(
        report.skipped_migrations > 0,
        "migrations {} skipped {}: at 90% drop some payload must be lost",
        report.migrations,
        report.skipped_migrations
    );
}

#[test]
fn straggler_detector_fires_emergency_rebalancing() {
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let oracle = seq::run_sequential(&graph, &program, 20);
    let plan = FaultPlan::new(chaos_seed(3)).with_straggler(1, 4.0);
    let cfg = RunConfig::new(8, 20)
        .with_world(world(plan))
        .with_straggler_detection(2.0, 2)
        .with_validation();
    let report = run(
        &graph,
        &program,
        &Metis::default(),
        CentralizedHeuristic::default,
        &cfg,
    );
    assert_eq!(report.final_data, oracle);
    assert!(
        report.emergency_balances > 0,
        "a persistent 4× straggler must trip the detector"
    );
    assert!(report.migrations > 0, "the emergency rounds must move load");
    // The straggler (rank 1) must have shed work relative to its static
    // share.
    let owned = |owner: &[u32]| owner.iter().filter(|&&p| p == 1).count();
    assert!(owned(&report.final_owner) < owned(report.initial_partition.as_slice()));
}

#[test]
fn killed_rank_is_evacuated_and_the_run_completes() {
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let oracle = seq::run_sequential(&graph, &program, 20);
    let clean_total = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(8, 20).with_world(clean_world()),
    )
    .total_time;

    // Kill rank 2 at ~40% of the fault-free run: it evacuates its tasks
    // at the next iteration boundary and zombies through the rest. The
    // periodic balancer keeps running and must never plan the dead rank.
    let plan = FaultPlan::new(chaos_seed(1)).with_kill(2, clean_total * 0.4);
    let cfg = RunConfig::new(8, 20)
        .with_balancing(10)
        .with_world(world(plan))
        .with_validation();
    let report = run(
        &graph,
        &program,
        &Metis::default(),
        CentralizedHeuristic::default,
        &cfg,
    );
    assert_eq!(report.final_data, oracle);
    assert_eq!(report.ranks_died, vec![2]);
    assert!(report.evacuated > 0, "rank 2 owned tasks to evacuate");
    assert!(
        !report.final_owner.contains(&2),
        "a dead rank must own nothing"
    );
}

#[test]
fn crashed_rank_rolls_back_and_recovers_exactly() {
    // An uncooperative crash on the thesis battlefield: rank 3 simply
    // stops mid-run — mailbox sealed, in-flight messages dropped, nothing
    // evacuated. Survivors must detect it, roll back to the last
    // coordinated checkpoint, adopt the dead rank's partition out of the
    // buddy copy, replay the lost iterations, and still produce the exact
    // fault-free answer.
    let bf = BattlefieldProgram::new(&Scenario::thesis());
    let terrain = bf.terrain();
    let iterations = 8;
    let clean = run(
        &terrain,
        &bf,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(8, iterations).with_world(clean_world()),
    );

    let plan = || FaultPlan::new(chaos_seed(9)).with_crash(3, clean.total_time * 0.55);
    let cfg = |p| {
        RunConfig::new(8, iterations)
            .with_checkpointing(2)
            .with_world(world(p))
            .with_validation()
    };
    let a = run(
        &terrain,
        &bf,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, clean.final_data, "recovery must be exact");
    assert!(a.rollbacks >= 1, "a crash must force a rollback");
    assert!(a.iterations_replayed > 0, "lost iterations must be re-run");
    assert!(a.checkpoint_bytes > 0, "snapshots were mirrored");
    assert!(a.faults.crash_timeouts > 0, "{:?}", a.faults);
    assert!(a.ranks_died.contains(&3));
    assert!(!a.final_owner.contains(&3), "a crashed rank owns nothing");
    assert!(
        a.total_time > clean.total_time,
        "re-run cost must be charged to the virtual clock"
    );

    // Bit-identical determinism, including the virtual-time total.
    let b = run(
        &terrain,
        &bf,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.rollbacks, b.rollbacks);
    assert_eq!(a.iterations_replayed, b.iterations_replayed);
    assert_eq!(a.checkpoint_bytes, b.checkpoint_bytes);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
    assert_eq!(
        a.negative_clamps, 0,
        "rollback recovery must not produce negative phase windows"
    );
}

#[test]
fn crash_at_every_iteration_sweep_recovers_exactly() {
    // Crash every rank at every iteration of a small workload: wherever
    // the crash lands — mid-exchange, mid-balance, during a checkpoint, or
    // in the final gather — the survivors must converge to the sequential
    // oracle, and a same-seed re-run must be bit-identical.
    let graph = ic2_graph::generators::hex_grid_n(16);
    let program = AvgProgram::fine();
    let nprocs = 4;
    let iterations = 6u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let clean_total = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(nprocs, iterations).with_world(clean_world()),
    )
    .total_time;

    for r in 0..nprocs {
        for i in 0..iterations {
            let at = clean_total * (i as f64 + 0.5) / iterations as f64;
            let plan = || FaultPlan::new(chaos_seed(13)).with_crash(r, at);
            let cfg = |p| {
                RunConfig::new(nprocs, iterations)
                    .with_balancing(3)
                    .with_checkpointing(2)
                    .with_world(world(p))
                    .with_validation()
            };
            let a = run(
                &graph,
                &program,
                &Metis::default(),
                CentralizedHeuristic::default,
                &cfg(plan()),
            );
            assert_eq!(a.final_data, oracle, "crash rank {r} at iteration {i}");
            assert!(a.rollbacks >= 1, "crash rank {r} at iteration {i}");
            assert!(a.iterations_replayed > 0, "crash rank {r} at iteration {i}");
            assert!(
                !a.final_owner.contains(&(r as u32)),
                "crash rank {r} at iteration {i}"
            );
            let b = run(
                &graph,
                &program,
                &Metis::default(),
                CentralizedHeuristic::default,
                &cfg(plan()),
            );
            assert_eq!(
                a.total_time.to_bits(),
                b.total_time.to_bits(),
                "crash rank {r} at iteration {i}: total time must be bit-identical"
            );
            assert_eq!(a.final_data, b.final_data);
        }
    }
}

#[test]
fn kill_and_crash_together_still_recover() {
    // A cooperative fail-stop and an uncooperative crash in one run, on a
    // lossy network: the kill evacuates normally through the crash-mode
    // control plane, the later crash rolls back and adopts, and the
    // answer stays exact.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let iterations = 12u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let clean_total = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(8, iterations).with_world(clean_world()),
    )
    .total_time;

    let plan = FaultPlan::new(chaos_seed(17))
        .with_drop(0.03)
        .with_kill(1, clean_total * 0.3)
        .with_crash(5, clean_total * 0.65);
    let cfg = RunConfig::new(8, iterations)
        .with_checkpointing(3)
        .with_world(world(plan))
        .with_validation();
    let report = run(&graph, &program, &Metis::default(), || NoBalancer, &cfg);
    assert_eq!(report.final_data, oracle);
    assert!(report.ranks_died.contains(&1), "{:?}", report.ranks_died);
    assert!(report.ranks_died.contains(&5), "{:?}", report.ranks_died);
    assert!(report.evacuated > 0, "the kill must evacuate cooperatively");
    assert!(report.rollbacks >= 1, "the crash must roll back");
    assert!(!report.final_owner.contains(&1));
    assert!(!report.final_owner.contains(&5));
}

#[test]
fn corruption_at_escalating_rates_stays_oracle_exact() {
    // Bit-flip and truncation faults at escalating probabilities: the
    // checksummed framing must catch every damaged frame, the NACK +
    // retransmit loop must repair it within the retry budget, and the
    // result must stay byte-identical to the sequential oracle with a
    // bit-identical virtual-time total across repeated runs.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::shifting();
    let oracle = seq::run_sequential(&graph, &program, 20);
    let mut prev_retransmits = 0u64;
    for (i, p) in [0.01, 0.05, 0.15].into_iter().enumerate() {
        let plan = || {
            FaultPlan::new(chaos_seed(23))
                .with_corrupt(p)
                .with_truncate(p * 0.4)
        };
        let cfg = RunConfig::new(8, 20)
            .with_balancing(10)
            .with_world(world(plan()))
            .with_validation();
        let a = run(
            &graph,
            &program,
            &Metis::default(),
            || CentralizedHeuristic { threshold: 0.05 },
            &cfg,
        );
        assert_eq!(a.final_data, oracle, "p={p}: repair must be exact");
        assert!(a.faults.corrupted > 0, "p={p}: {:?}", a.faults);
        // A single decision can both truncate and bit-flip one frame, so
        // the per-kind counters may double-count mangle events; detections
        // must still cover every event at least once.
        assert!(
            a.faults.corruptions_detected >= a.faults.corrupted.max(a.faults.truncated),
            "p={p}: every mangled frame must be caught at least once: {:?}",
            a.faults
        );
        assert!(a.faults.retransmits > 0, "p={p}: {:?}", a.faults);
        assert!(a.faults.nacks > 0, "p={p}: {:?}", a.faults);
        // Fault decisions are pure threshold tests over the same hash
        // stream, so escalating the probability only adds decisions.
        assert!(
            a.faults.retransmits >= prev_retransmits,
            "retransmits must not shrink as corruption escalates: \
             {} at step {i} after {prev_retransmits}",
            a.faults.retransmits
        );
        prev_retransmits = a.faults.retransmits;

        let b = run(
            &graph,
            &program,
            &Metis::default(),
            || CentralizedHeuristic { threshold: 0.05 },
            &cfg,
        );
        assert_eq!(a.final_data, b.final_data, "p={p}");
        assert_eq!(a.faults, b.faults, "p={p}");
        assert_eq!(
            a.total_time.to_bits(),
            b.total_time.to_bits(),
            "p={p}: virtual time must be bit-identical under the same seed"
        );
        assert_eq!(a.negative_clamps, 0, "p={p}: no negative phase windows");
    }
}

#[test]
fn corruption_on_the_battlefield_matches_the_clean_run() {
    // The acceptance-criteria rates on the thesis battlefield: 5% bit
    // flips plus 2% truncations must repair to exactly the fault-free
    // answer, with the repair cost visible in the virtual clock.
    let bf = BattlefieldProgram::new(&Scenario::thesis());
    let terrain = bf.terrain();
    let clean = run(
        &terrain,
        &bf,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(8, 5).with_world(clean_world()),
    );
    let plan = FaultPlan::new(chaos_seed(29))
        .with_corrupt(0.05)
        .with_truncate(0.02);
    let chaotic = run(
        &terrain,
        &bf,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(8, 5).with_world(world(plan)),
    );
    assert_eq!(chaotic.final_data, clean.final_data);
    assert!(chaotic.faults.corrupted > 0, "{:?}", chaotic.faults);
    assert!(chaotic.faults.truncated > 0, "{:?}", chaotic.faults);
    assert!(chaotic.faults.retransmits > 0, "{:?}", chaotic.faults);
    assert!(
        chaotic.total_time > clean.total_time,
        "NACK backoff and retransmits must cost virtual time"
    );
}

#[test]
fn corruption_during_rollback_recovery_stays_exact() {
    // The combined scenario: a lossy, corrupting network *and* an
    // uncooperative crash. Retransmits must repair damage to checkpoint
    // mirrors and adoption packages while the rollback protocol runs, and
    // the recovered answer must still match the oracle bit-for-bit, twice.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let iterations = 10u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let clean_total = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(8, iterations).with_world(clean_world()),
    )
    .total_time;

    let plan = || {
        FaultPlan::new(chaos_seed(31))
            .with_corrupt(0.05)
            .with_truncate(0.02)
            .with_crash(3, clean_total * 0.55)
    };
    let cfg = |p| {
        RunConfig::new(8, iterations)
            .with_checkpointing(2)
            .with_world(world(p))
            .with_validation()
    };
    let a = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(
        a.final_data, oracle,
        "corrupt + crash recovery must be exact"
    );
    assert!(a.rollbacks >= 1, "the crash must roll back");
    assert!(a.faults.corruptions_detected > 0, "{:?}", a.faults);
    assert!(a.faults.retransmits > 0, "{:?}", a.faults);
    assert!(a.ranks_died.contains(&3));
    assert!(!a.final_owner.contains(&3));

    let b = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &cfg(plan()),
    );
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.rollbacks, b.rollbacks);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
}

#[test]
fn corruption_composes_with_drops_and_stragglers() {
    // Every message-plane fault class at once. Drops and mangles interact
    // (a frame can be dropped on one attempt and corrupted on the next);
    // the reliable layer must still converge to the oracle.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::shifting();
    let oracle = seq::run_sequential(&graph, &program, 20);
    let plan = FaultPlan::new(chaos_seed(37))
        .with_drop(0.04)
        .with_delay(0.04, 2e-4)
        .with_dup(0.04)
        .with_reorder(0.04)
        .with_corrupt(0.04)
        .with_truncate(0.02)
        .with_straggler(3, 2.0);
    let cfg = RunConfig::new(8, 20)
        .with_balancing(10)
        .with_world(world(plan))
        .with_validation();
    let report = run(
        &graph,
        &program,
        &Metis::default(),
        || CentralizedHeuristic { threshold: 0.05 },
        &cfg,
    );
    assert_eq!(report.final_data, oracle);
    assert!(report.faults.dropped > 0, "{:?}", report.faults);
    assert!(report.faults.corrupted > 0, "{:?}", report.faults);
    assert!(report.faults.retransmits > 0, "{:?}", report.faults);
}

#[test]
fn kill_determinism_and_virtual_times_match() {
    // The evacuation path itself must be deterministic.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let plan = FaultPlan::new(chaos_seed(5))
        .with_drop(0.03)
        .with_kill(4, 0.02);
    let cfg = RunConfig::new(8, 15)
        .with_world(world(plan))
        .with_validation();
    let a = run(&graph, &program, &Metis::default(), || NoBalancer, &cfg);
    let b = run(&graph, &program, &Metis::default(), || NoBalancer, &cfg);
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.ranks_died, b.ranks_died);
    assert_eq!(a.evacuated, b.evacuated);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
}
