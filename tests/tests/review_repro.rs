//! Temporary review repro: crash a rank inside the checkpoint staging
//! window (between the iteration-end ctl_exchange and its mirror send).

use ic2mpi::prelude::*;
use ic2mpi::seq;
use mpisim::{FaultPlan, NetModel};
use std::time::Duration;

#[test]
fn crash_during_checkpoint_staging_recovers() {
    let graph = ic2_graph::generators::hex_grid_n(16);
    let program = AvgProgram::fine();
    let nprocs = 4;
    let iterations = 2u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);

    // Inflate the per-entry checkpoint cost so the staging advance at the
    // end of iteration 1 spans several virtual seconds; a crash at t=0.5
    // lands inside rank 1's staging advance, before its mirror send.
    let mut cfg = RunConfig::new(nprocs, iterations)
        .with_checkpointing(1)
        .with_world(
            mpisim::Config::virtual_time(NetModel::origin2000())
                .with_watchdog(Duration::from_secs(10))
                .with_faults(FaultPlan::new(1).with_crash(1, 0.5)),
        )
        .with_validation();
    cfg.costs.checkpoint_per_entry = 1.0;

    let report = run(&graph, &program, &Metis::default(), || NoBalancer, &cfg);
    assert_eq!(report.final_data, oracle, "recovery must be exact");
    assert!(report.rollbacks >= 1);
}
