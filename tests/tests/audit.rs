//! Property tests for the state-integrity digests, plus platform-level
//! audit runs on a clean world.
//!
//! The two properties that carry the audit design (see
//! `ic2mpi::audit` module docs):
//!
//! 1. **Incremental == full recompute.** After any interleaving of edits,
//!    migrations and restores, the maintained per-entry hash equals a
//!    fresh [`entry_hash`] of the current value, and the region digest
//!    equals the XOR fold of fresh hashes.
//! 2. **Order invariance.** Digests are XOR folds, so visiting nodes in
//!    bucket order, id order, or any permutation yields the same root.
//!
//! Randomness is a seeded `mix64` chain — every run of these tests
//! exercises the same deterministic op sequences.

use ic2_rng::mix64;
use ic2mpi::audit::{corrupt_value, count_bad_entries, entry_hash, entry_sums, AuditState};
use ic2mpi::prelude::*;
use ic2mpi::seq;
use mpisim::NetModel;
use std::collections::BTreeMap;
use std::time::Duration;

fn clean_world() -> mpisim::Config {
    mpisim::Config::virtual_time(NetModel::origin2000()).with_watchdog(Duration::from_secs(30))
}

/// Tiny deterministic PRNG over a mix64 chain.
struct Chain(u64);
impl Chain {
    fn next(&mut self) -> u64 {
        self.0 = mix64(self.0);
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Model of one rank's store for the property test: current values plus
/// the incrementally-maintained audit state, exactly as the platform
/// maintains them (record on every legitimate write, remove on migrate-out
/// by simply no longer folding the id).
struct ModelRank {
    owned: BTreeMap<u32, i64>,
    audit: AuditState,
}

impl ModelRank {
    fn new(n_nodes: usize) -> Self {
        ModelRank {
            owned: BTreeMap::new(),
            audit: AuditState::new(n_nodes),
        }
    }
    fn write(&mut self, id: u32, v: i64) {
        self.owned.insert(id, v);
        self.audit.record(id, entry_hash(id, &v));
    }
    /// Full recompute: the digest an audit would produce from scratch.
    fn fresh_root(&self) -> u64 {
        self.owned
            .iter()
            .fold(0u64, |acc, (&id, v)| acc ^ entry_hash(id, v))
    }
    fn maintained_root(&self) -> u64 {
        self.audit.digest(self.owned.keys().copied())
    }
}

#[test]
fn incremental_digest_matches_full_recompute_under_random_ops() {
    // 400 random ops over 2 model ranks and 32 node ids: edits (the
    // promote/unpack path), migrations (the migrate-insert path, moving
    // ownership between ranks) and restores (the rollback path, resetting
    // a subset to a snapshot and re-recording). After every op, the
    // maintained state must agree with a full recompute on both ranks.
    for seed in [1u64, 7, 23] {
        let mut rng = Chain(seed);
        let n_nodes = 32u32;
        let mut ranks = [
            ModelRank::new(n_nodes as usize),
            ModelRank::new(n_nodes as usize),
        ];
        // Initial ownership: even ids on rank 0, odd on rank 1.
        for id in 0..n_nodes {
            ranks[(id % 2) as usize].write(id, i64::from(id) + 1);
        }
        let snapshot: [BTreeMap<u32, i64>; 2] = [ranks[0].owned.clone(), ranks[1].owned.clone()];

        for _ in 0..400 {
            match rng.below(4) {
                // Edit: a legitimate write on the owner.
                0 | 1 => {
                    let id = rng.below(u64::from(n_nodes)) as u32;
                    let who = usize::from(!ranks[0].owned.contains_key(&id));
                    let v = rng.next() as i64;
                    ranks[who].write(id, v);
                }
                // Migrate: move one id to the other rank, carrying its
                // current value; the receiver records it (the
                // migrate-insert audit hook), the sender stops folding it.
                2 => {
                    let id = rng.below(u64::from(n_nodes)) as u32;
                    let from = usize::from(!ranks[0].owned.contains_key(&id));
                    let v = ranks[from].owned.remove(&id).unwrap();
                    ranks[1 - from].write(id, v);
                }
                // Restore: roll one rank's currently-owned ids back to
                // their snapshot values where the snapshot has them,
                // re-recording each (the rollback audit re-enable).
                _ => {
                    let who = rng.below(2) as usize;
                    let ids: Vec<u32> = ranks[who].owned.keys().copied().collect();
                    for id in ids {
                        if let Some(&v) = snapshot[who].get(&id) {
                            ranks[who].write(id, v);
                        }
                    }
                }
            }
            for (r, m) in ranks.iter().enumerate() {
                assert_eq!(
                    m.maintained_root(),
                    m.fresh_root(),
                    "seed {seed} rank {r}: incremental digest drifted from recompute"
                );
                for (&id, v) in &m.owned {
                    assert_eq!(
                        m.audit.hash_of(id),
                        entry_hash(id, v),
                        "seed {seed} rank {r} id {id}: stale maintained hash"
                    );
                }
            }
        }
    }
}

#[test]
fn digest_is_order_invariant_over_random_permutations() {
    let mut rng = Chain(99);
    let n = 64u32;
    let mut s = AuditState::new(n as usize);
    for id in 0..n {
        s.record(id, entry_hash(id, &(rng.next() as i64)));
    }
    let forward = s.digest(0..n);
    // Fisher–Yates with the mix64 chain: any permutation folds the same.
    for _ in 0..10 {
        let mut ids: Vec<u32> = (0..n).collect();
        for i in (1..ids.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            ids.swap(i, j);
        }
        assert_eq!(s.digest(ids), forward, "XOR fold must ignore visit order");
    }
    assert_eq!(s.digest((0..n).rev()), forward);
}

#[test]
fn entry_sums_verify_and_count_corrupted_entries() {
    let entries: Vec<(u32, i64)> = (0..16u32).map(|id| (id, i64::from(id) * 31 - 5)).collect();
    let sums = entry_sums(&entries);
    assert_eq!(
        count_bad_entries(&entries, &sums),
        0,
        "pristine copy verifies"
    );

    // Corrupt a growing set of entries; the count must track exactly.
    let mut damaged = entries.clone();
    for (k, victim) in [3usize, 9, 14].iter().enumerate() {
        damaged[*victim].1 = corrupt_value(&damaged[*victim].1, (*victim as u64) * 11)
            .expect("i64 entries are always corruptible");
        assert_eq!(
            count_bad_entries(&damaged, &sums),
            k as u64 + 1,
            "each corrupted entry must be counted once"
        );
    }

    // A length mismatch (truncated replica) can never verify.
    assert!(count_bad_entries(&damaged[..10], &sums) > 0);
}

#[test]
fn corrupt_value_walks_deterministically_and_always_differs() {
    // Every start bit yields a decodable, different value for these types,
    // and the same start bit always yields the same damage.
    for start in 0..128u64 {
        let d = corrupt_value(&0x5a5a_1234_i64, start).expect("i64 corruptible");
        assert_ne!(d, 0x5a5a_1234_i64);
        assert_eq!(d, corrupt_value(&0x5a5a_1234_i64, start).unwrap());
    }
    let v = vec![1u64, 2, 3];
    for start in 0..64u64 {
        let d = corrupt_value(&v, start * 3).expect("Vec payload corruptible");
        assert_ne!(d, v);
    }
}

#[test]
fn clean_audited_run_is_oracle_exact_and_charges_audit_time() {
    // Audits on a fault-free world: no mismatches, no repairs, and the
    // digest maintenance + boundary verification show up as virtual time
    // relative to the same run without audits. Bit-deterministic.
    let graph = ic2_graph::generators::hex_grid_n(16);
    let program = AvgProgram::fine();
    let nprocs = 4;
    let iterations = 8u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let base = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(nprocs, iterations).with_world(clean_world()),
    );
    let cfg = || {
        RunConfig::new(nprocs, iterations)
            .with_checkpointing(3)
            .with_state_audit(2)
            .with_world(clean_world())
            .with_validation()
    };
    let a = run(&graph, &program, &Metis::default(), || NoBalancer, &cfg());
    assert_eq!(a.final_data, oracle, "audits must not perturb results");
    assert_eq!(a.memory_corruptions, 0);
    assert_eq!(a.audit_mismatches, 0, "a clean world has nothing to find");
    assert_eq!(a.shadow_resyncs, 0);
    assert_eq!(a.bad_replicas, 0);
    assert_eq!(a.repairs, 0);
    assert!(
        a.total_time > base.total_time,
        "digest maintenance and boundary checks must cost virtual time"
    );
    let b = run(&graph, &program, &Metis::default(), || NoBalancer, &cfg());
    assert_eq!(a.final_data, b.final_data);
    assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
}

#[test]
fn audit_interval_trades_time_for_detection_latency() {
    // k=1 audits every boundary, k=4 every fourth: same answer, and the
    // tighter interval costs at least as much virtual time.
    let graph = ic2_graph::generators::hex_grid_n(16);
    let program = AvgProgram::fine();
    let nprocs = 4;
    let iterations = 8u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    let cfg = |k: u32| {
        RunConfig::new(nprocs, iterations)
            .with_checkpointing(4)
            .with_state_audit(k)
            .with_world(clean_world())
    };
    let tight = run(&graph, &program, &Metis::default(), || NoBalancer, &cfg(1));
    let loose = run(&graph, &program, &Metis::default(), || NoBalancer, &cfg(4));
    assert_eq!(tight.final_data, oracle);
    assert_eq!(loose.final_data, oracle);
    assert!(
        tight.total_time >= loose.total_time,
        "auditing every boundary cannot be cheaper than every fourth: {} < {}",
        tight.total_time,
        loose.total_time
    );
}
