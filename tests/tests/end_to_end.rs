//! Workspace-level integration tests: every crate composed the way the
//! reproduction harness composes them.

use ic2_battlefield::{BattlefieldProgram, Scenario};
use ic2_graph::metrics;
use ic2mpi::prelude::*;
use ic2mpi::seq;

#[test]
fn thesis_pipeline_chaco_to_execution() {
    // The thesis's full pipeline: generate a graph, write it in Chaco
    // format (what Metis/PaGrid consume), read it back, partition,
    // execute, verify against sequential.
    let original = ic2_graph::generators::thesis_random_graph(64, 2);
    let text = ic2_graph::chaco::render(&original, 0);
    let graph = ic2_graph::chaco::parse(&text).expect("roundtrip");
    let program = AvgProgram::fine();
    let oracle = seq::run_sequential(&graph, &program, 15);
    let report = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(8, 15),
    );
    assert_eq!(report.final_data, oracle);
}

#[test]
fn speedup_shape_matches_the_thesis() {
    // Fig 11 / 16 shape: monotone gains to 8 procs, coarse >> fine at 16.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let time = |program: &AvgProgram, procs: usize| {
        run(
            &graph,
            program,
            &Metis::default(),
            || NoBalancer,
            &RunConfig::new(procs, 20),
        )
        .total_time
    };
    let fine = AvgProgram::fine();
    let coarse = AvgProgram::coarse();
    let f: Vec<f64> = [1, 2, 4, 8, 16].iter().map(|&p| time(&fine, p)).collect();
    let c: Vec<f64> = [1, 2, 4, 8, 16].iter().map(|&p| time(&coarse, p)).collect();
    for i in 1..f.len() {
        assert!(f[i] < f[i - 1], "fine times must fall: {f:?}");
        assert!(c[i] < c[i - 1], "coarse times must fall: {c:?}");
    }
    let fine_speedup = f[0] / f[4];
    let coarse_speedup = c[0] / c[4];
    assert!(
        coarse_speedup > fine_speedup,
        "coarse {coarse_speedup:.2} must beat fine {fine_speedup:.2} at 16 procs"
    );
    // Fine-grain efficiency must degrade noticeably by 16 procs (the
    // thesis's dip), coarse must stay strong.
    assert!(fine_speedup < 12.0, "fine speedup {fine_speedup:.2}");
    assert!(coarse_speedup > 10.0, "coarse speedup {coarse_speedup:.2}");
}

#[test]
fn battlefield_partitioner_study_reproduces_orderings() {
    // Fig 20 essentials: Metis beats the gray-code embedding and the
    // column bands; the gray-code embedding is the worst scheme.
    let program = BattlefieldProgram::new(&Scenario::thesis());
    let graph = program.terrain();
    let time = |p: &(dyn StaticPartitioner + Sync)| {
        run(&graph, &program, p, || NoBalancer, &RunConfig::new(8, 10)).total_time
    };
    let metis = time(&Metis::default());
    let bf = time(&ic2_partition::graycode::GrayCodeBf);
    let column = time(&ic2_partition::bands::ColumnBand);
    let rect = time(&ic2_partition::bands::RectangularBand);
    assert!(metis < bf, "metis {metis:.3} vs bf {bf:.3}");
    assert!(metis < column, "metis {metis:.3} vs column {column:.3}");
    assert!(rect < bf, "rect {rect:.3} vs bf {bf:.3}");
}

#[test]
fn migration_keeps_partition_cut_reasonable() {
    // After heavy dynamic migration, the owner map must still be a sane
    // partition: every processor occupied, cut within 3x of the static
    // one (locality-guarded migrant selection).
    let graph = ic2_graph::generators::hex_grid_n(96);
    let program = AvgProgram::persistent();
    let cfg = RunConfig::new(8, 25)
        .with_balancing(5)
        .with_migration_batch(8)
        .with_migrant_policy(MigrantPolicy::LoadAware)
        .with_validation();
    let report = run(
        &graph,
        &program,
        &Metis::default(),
        || Diffusion { threshold: 0.05 },
        &cfg,
    );
    assert!(report.migrations > 0);
    let final_part = ic2_graph::Partition::new(report.final_owner.clone(), 8);
    let counts = final_part.counts();
    assert!(
        counts.iter().all(|&c| c > 0),
        "no processor may end empty: {counts:?}"
    );
    let static_cut = metrics::edge_cut(&graph, &report.initial_partition);
    let final_cut = metrics::edge_cut(&graph, &final_part);
    assert!(
        final_cut <= 3 * static_cut,
        "cut exploded: {static_cut} -> {final_cut}"
    );
}

#[test]
fn all_three_balancers_produce_identical_results() {
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::shifting();
    let oracle = seq::run_sequential(&graph, &program, 25);
    let base = RunConfig::new(8, 25).with_balancing(10);

    let with_none = run(&graph, &program, &Metis::default(), || NoBalancer, &base);
    let with_central = run(
        &graph,
        &program,
        &Metis::default(),
        CentralizedHeuristic::default,
        &base,
    );
    let with_diffusion = run(
        &graph,
        &program,
        &Metis::default(),
        || Diffusion { threshold: 0.1 },
        &base.clone().with_migration_batch(8),
    );
    assert_eq!(with_none.final_data, oracle);
    assert_eq!(with_central.final_data, oracle);
    assert_eq!(with_diffusion.final_data, oracle);
}

#[test]
fn exchange_modes_agree_and_overlap_helps_or_ties() {
    let graph = ic2_graph::generators::hex_grid(8, 8);
    let program = AvgProgram::coarse();
    let post = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(8, 15),
    );
    let overlap = run(
        &graph,
        &program,
        &Metis::default(),
        || NoBalancer,
        &RunConfig::new(8, 15).with_exchange(ExchangeMode::Overlap),
    );
    assert_eq!(post.final_data, overlap.final_data);
    // Overlap hides communication behind internal-node compute, so it can
    // only help (or tie, modulo scheduling noise) in virtual time.
    assert!(
        overlap.total_time <= post.total_time * 1.02,
        "overlap {:.4} vs post {:.4}",
        overlap.total_time,
        post.total_time
    );
}

#[test]
fn processor_network_plugs_into_pagrid() {
    // PaGrid consumes the machine description in grid format, as the
    // thesis supplies it.
    let machine = ic2_partition::procgraph::ProcessorGraph::hypercube(3);
    let text = machine.render();
    let parsed = ic2_partition::procgraph::ProcessorGraph::parse(&text).unwrap();
    let graph = ic2_graph::generators::thesis_random_graph(64, 1);
    let program = AvgProgram::fine();
    let pagrid = PaGrid::on_machine(parsed).with_rref(0.45);
    let oracle = seq::run_sequential(&graph, &program, 10);
    let report = run(
        &graph,
        &program,
        &pagrid,
        || NoBalancer,
        &RunConfig::new(8, 10),
    );
    assert_eq!(report.final_data, oracle);
}

#[test]
fn real_time_mode_runs_the_full_stack() {
    // Wall-clock mode with tiny grains: still correct, just not virtual.
    let graph = ic2_graph::generators::hex_grid(4, 4);
    let program = AvgProgram {
        grain: GrainSchedule::Uniform(1e-6),
    };
    let oracle = seq::run_sequential(&graph, &program, 5);
    let cfg = RunConfig::new(4, 5).with_world(mpisim::Config::real_time());
    let report = run(&graph, &program, &Metis::default(), || NoBalancer, &cfg);
    assert_eq!(report.final_data, oracle);
    assert!(report.total_time > 0.0);
}
