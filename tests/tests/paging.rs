//! Buffer-pool property tests: the eviction policies in isolation
//! (determinism, scan resistance, budget discipline) plus the paged
//! platform's baseline exactness contract for every policy.
//!
//! The pool is a pure deterministic structure — no RNG, no clock — so
//! "same seed" here means "same access stream": identical admit/touch
//! sequences must produce identical victim sequences and resident sets.

use ic2mpi::paging::BufferPool;
use ic2mpi::prelude::*;
use ic2mpi::seq;
use mpisim::NetModel;
use std::collections::BTreeSet;
use std::time::Duration;

const POLICIES: [EvictionPolicy; 4] = [
    EvictionPolicy::Fifo,
    EvictionPolicy::Lru,
    EvictionPolicy::Clock,
    EvictionPolicy::Sieve,
];

fn clean_world() -> mpisim::Config {
    mpisim::Config::virtual_time(NetModel::origin2000()).with_watchdog(Duration::from_secs(30))
}

/// Deterministic access-stream generator (splitmix64).
fn stream(seed: u64, len: usize, pages: usize) -> Vec<usize> {
    let mut x = seed;
    (0..len)
        .map(|_| {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) as usize % pages
        })
        .collect()
}

/// Drive one pool through an access stream: touch hits, admit misses,
/// evict back down to budget. Returns (hits, victim sequence).
fn simulate(policy: EvictionPolicy, budget: usize, accesses: &[usize]) -> (u64, Vec<usize>) {
    let mut pool = BufferPool::new(policy, budget);
    let pinned = BTreeSet::new();
    let mut hits = 0u64;
    let mut victims = Vec::new();
    for &page in accesses {
        if pool.contains(page) {
            pool.touch(page);
            hits += 1;
        } else {
            pool.admit(page);
            while pool.over_budget() {
                victims.push(pool.evict(&pinned).expect("nothing is pinned"));
            }
        }
        assert!(
            pool.len() <= budget,
            "{policy:?}: budget violated after access"
        );
    }
    (hits, victims)
}

#[test]
fn same_stream_same_victims_for_every_policy() {
    // Replaying an identical access stream must reproduce the victim
    // sequence and the final resident set exactly — the property the
    // platform's bit-identical `total_time` contract stands on.
    for policy in POLICIES {
        for seed in [3u64, 11, 29] {
            let accesses = stream(seed, 4000, 48);
            let (hits_a, victims_a) = simulate(policy, 7, &accesses);
            let (hits_b, victims_b) = simulate(policy, 7, &accesses);
            assert_eq!(hits_a, hits_b, "{policy:?} seed {seed}: hits diverged");
            assert_eq!(
                victims_a, victims_b,
                "{policy:?} seed {seed}: victim order diverged"
            );
            assert!(!victims_a.is_empty(), "{policy:?} seed {seed}: must evict");
        }
    }
}

#[test]
fn scan_resistant_policies_beat_fifo_on_hot_set_plus_looping_scan() {
    // Four hot pages touched every other access, interleaved with a
    // 24-page looping cold scan, budget 8. Clock and SIEVE retain the
    // re-referenced hot set (reference/visited bits spare it at the
    // hand), while FIFO ages hot pages out as cold admissions push the
    // queue — the textbook scan-resistance separation.
    let hot = 4usize;
    let cold = 24usize;
    let mut accesses = Vec::new();
    for i in 0..6000 {
        accesses.push(i % hot);
        accesses.push(hot + i % cold);
    }
    let (fifo_hits, _) = simulate(EvictionPolicy::Fifo, 8, &accesses);
    let (clock_hits, _) = simulate(EvictionPolicy::Clock, 8, &accesses);
    let (sieve_hits, _) = simulate(EvictionPolicy::Sieve, 8, &accesses);
    let (lru_hits, _) = simulate(EvictionPolicy::Lru, 8, &accesses);
    assert!(
        clock_hits > fifo_hits,
        "Clock ({clock_hits}) must beat FIFO ({fifo_hits}) on a hot set"
    );
    assert!(
        sieve_hits > fifo_hits,
        "SIEVE ({sieve_hits}) must beat FIFO ({fifo_hits}) on a hot set"
    );
    assert!(
        lru_hits >= fifo_hits,
        "LRU ({lru_hits}) must not lose to FIFO ({fifo_hits}) on a hot set"
    );
}

#[test]
fn pool_never_exceeds_budget_and_never_evicts_pinned_pages() {
    // Random churn with a pinned working set: the victim is never a
    // pinned page, residency never exceeds the budget after enforcement,
    // and `resident_pages` agrees with `contains`.
    for policy in POLICIES {
        let budget = 5usize;
        let mut pool = BufferPool::new(policy, budget);
        let pinned: BTreeSet<usize> = [0, 1].into_iter().collect();
        for page in [0usize, 1] {
            pool.admit(page);
        }
        for &page in &stream(17, 3000, 32) {
            if pool.contains(page) {
                pool.touch(page);
            } else {
                pool.admit(page);
                while pool.over_budget() {
                    let victim = pool.evict(&pinned).expect("unpinned pages exist");
                    assert!(
                        !pinned.contains(&victim),
                        "{policy:?}: evicted pinned page {victim}"
                    );
                }
            }
            assert!(pool.len() <= budget, "{policy:?}: over budget");
            let resident = pool.resident_pages();
            assert_eq!(resident.len(), pool.len(), "{policy:?}");
            assert!(resident.iter().all(|&p| pool.contains(p)), "{policy:?}");
            assert!(pool.contains(0) && pool.contains(1), "{policy:?}: pinned");
        }
    }
}

#[test]
fn evict_returns_none_when_every_resident_page_is_pinned() {
    for policy in POLICIES {
        let mut pool = BufferPool::new(policy, 1);
        pool.admit(0);
        pool.admit(1);
        let pinned: BTreeSet<usize> = [0, 1].into_iter().collect();
        assert!(pool.over_budget());
        assert_eq!(pool.evict(&pinned), None, "{policy:?}");
        assert!(pool.contains(0) && pool.contains(1), "{policy:?}");
    }
}

#[test]
fn paged_run_is_oracle_exact_and_deterministic_for_every_policy() {
    // The end-to-end contract with no disk faults: a budget of 4 resident
    // pages against 64 hash buckets per rank forces constant fault-in and
    // eviction traffic, and the answer must still be byte-identical to
    // the sequential oracle with bit-identical same-seed `total_time`,
    // under every replacement policy.
    let graph = ic2_graph::generators::hex_grid_n(64);
    let program = AvgProgram::fine();
    let nprocs = 8;
    let iterations = 12u32;
    let oracle = seq::run_sequential(&graph, &program, iterations);
    for policy in POLICIES {
        let cfg = || {
            RunConfig::new(nprocs, iterations)
                .with_checkpointing(4)
                .with_paging(4, policy)
                .with_world(clean_world())
                .with_validation()
        };
        let a = run(&graph, &program, &Metis::default(), || NoBalancer, &cfg());
        assert_eq!(a.final_data, oracle, "{policy:?}: paged run must be exact");
        assert!(a.page_faults > 0, "{policy:?}: paging must engage: {a:?}");
        assert!(a.pages_evicted > 0, "{policy:?}: budget must bind: {a:?}");
        assert_eq!(a.disk_retries, 0, "{policy:?}: clean disk");
        assert_eq!(a.torn_writes_detected, 0, "{policy:?}: clean disk");
        let b = run(&graph, &program, &Metis::default(), || NoBalancer, &cfg());
        assert_eq!(a.final_data, b.final_data, "{policy:?}");
        assert_eq!(a.page_faults, b.page_faults, "{policy:?}");
        assert_eq!(a.pages_evicted, b.pages_evicted, "{policy:?}");
        assert_eq!(
            a.total_time.to_bits(),
            b.total_time.to_bits(),
            "{policy:?}: total time must be bit-identical"
        );
    }
}

#[test]
fn zero_page_budget_is_rejected_with_a_typed_error() {
    let graph = ic2_graph::generators::hex_grid_n(16);
    let cfg = RunConfig::new(4, 4)
        .with_paging(0, EvictionPolicy::Clock)
        .with_world(clean_world());
    let err = try_run(
        &graph,
        &AvgProgram::fine(),
        &Metis::default(),
        || NoBalancer,
        &cfg,
    )
    .expect_err("a zero page budget can hold no working set");
    assert!(matches!(err, PlatformError::ZeroPageBudget), "{err:?}");
}
